// Serving-layer suite (DESIGN.md §10): GenerationService scheduling
// semantics (future round-trip, strict priorities, deadline expiry,
// queue-full backpressure, cancellation, graceful drain), ResultCache
// LRU/sharding behaviour, canonical-hash memoization (cache hits on
// resubmission of identical topologies), the JSON-lines wire protocol,
// a live TCP loopback round trip, the hardened ids_to_netlist_checked
// path under adversarial token sequences, WL canonical-hash properties,
// and the periodic metrics flusher.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/canon.hpp"
#include "data/builder.hpp"
#include "data/generators.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "obs/metrics.hpp"
#include "json_check.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/stats.hpp"
#include "serve/timeline.hpp"
#include "train/signal.hpp"
#include "util/fault.hpp"
#include "util/parallel.hpp"

namespace {

using namespace eva;
using namespace eva::serve;

nn::Tokenizer small_tokenizer() {
  return nn::Tokenizer({4, 4, 2, 2, 2, 2, 2, 2});
}

/// Tiny model + service fixture. Each test gets a fresh service so the
/// scheduler thread never outlives the test's assertions.
struct ServeFixture {
  explicit ServeFixture(ServiceConfig cfg = {})
      : tok(small_tokenizer()),
        rng(99),
        model(nn::ModelConfig::tiny(tok.vocab_size()), rng),
        service(model, tok, cfg) {}

  nn::Tokenizer tok;
  Rng rng;
  nn::TransformerLM model;
  GenerationService service;
};

ServiceConfig fast_config() {
  ServiceConfig cfg;
  cfg.batch_width = 4;
  cfg.sample.max_len = 48;  // keep tiny-model decodes snappy
  return cfg;
}

// --- GenerationService -------------------------------------------------------

TEST(Service, FutureRoundTrip) {
  ServeFixture f(fast_config());
  f.service.start();
  Request req;
  req.n = 2;
  req.seed = 11;
  auto t = f.service.submit(req);
  Response r = t.response.get();
  EXPECT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.items.size(), 2u);
  for (const auto& item : r.items) {
    EXPECT_FALSE(item.ids.empty());
    if (item.decoded) {
      EXPECT_FALSE(item.netlist.empty());
    }
  }
  EXPECT_GT(r.latency_ms, 0.0);
  EXPECT_GT(r.finished_seq, 0u);
}

TEST(Service, PriorityOrderingAcrossLevels) {
  // Everything is queued before the scheduler starts, so pop order is
  // purely priority order regardless of submission order.
  ServeFixture f(fast_config());
  Request lo, mid, hi;
  lo.priority = Priority::kLow;
  mid.priority = Priority::kNormal;
  hi.priority = Priority::kHigh;
  lo.seed = mid.seed = hi.seed = 5;
  auto tl = f.service.submit(lo);
  auto tm = f.service.submit(mid);
  auto th = f.service.submit(hi);
  f.service.start();
  const Response rl = tl.response.get();
  const Response rm = tm.response.get();
  const Response rh = th.response.get();
  EXPECT_LT(rh.finished_seq, rm.finished_seq);
  EXPECT_LT(rm.finished_seq, rl.finished_seq);
}

TEST(Service, ExpiredDeadlineResolvesToTimeout) {
  ServeFixture f(fast_config());
  Request req;
  req.deadline_ms = 1.0;
  auto t = f.service.submit(req);  // queued: scheduler not started yet
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  f.service.start();
  Response r = t.response.get();
  EXPECT_EQ(r.status, Status::kTimeout);
  EXPECT_TRUE(r.items.empty());
}

TEST(Service, QueueFullRejectsWithRetryAfter) {
  ServiceConfig cfg = fast_config();
  cfg.queue_max = 2;
  cfg.retry_after_ms = 123.0;
  ServeFixture f(cfg);
  // Not started: the queue can only fill.
  auto t1 = f.service.submit({});
  auto t2 = f.service.submit({});
  auto t3 = f.service.submit({});
  Response r3 = t3.response.get();
  EXPECT_EQ(r3.status, Status::kRejected);
  EXPECT_DOUBLE_EQ(r3.retry_after_ms, 123.0);
  EXPECT_EQ(f.service.queue_depth(), 2u);
  f.service.drain();
  EXPECT_EQ(t1.response.get().status, Status::kOk);
  EXPECT_EQ(t2.response.get().status, Status::kOk);
}

TEST(Service, CancelQueuedRequest) {
  ServeFixture f(fast_config());
  auto t = f.service.submit({});
  EXPECT_TRUE(f.service.cancel(t.id));
  f.service.start();
  EXPECT_EQ(t.response.get().status, Status::kCancelled);
  EXPECT_FALSE(f.service.cancel(t.id));  // no longer queued
}

TEST(Service, SeededResubmissionHitsCanonicalCache) {
  ServeFixture f(fast_config());
  f.service.start();
  Request req;
  req.n = 3;
  req.seed = 42;  // identical seed => identical topologies both times
  const auto hits_before = obs::counter("serve.cache_hits").value();
  Response first = f.service.submit(req).response.get();
  ASSERT_EQ(first.status, Status::kOk);
  Response second = f.service.submit(req).response.get();
  ASSERT_EQ(second.status, Status::kOk);
  const auto hits_after = obs::counter("serve.cache_hits").value();
  EXPECT_GT(hits_after, hits_before);
  ASSERT_EQ(first.items.size(), second.items.size());
  for (std::size_t i = 0; i < second.items.size(); ++i) {
    EXPECT_EQ(first.items[i].ids, second.items[i].ids);
    if (second.items[i].decoded) {
      // The evaluation was memoized by WL canonical hash.
      EXPECT_TRUE(second.items[i].cached);
      EXPECT_EQ(second.items[i].valid, first.items[i].valid);
      EXPECT_DOUBLE_EQ(second.items[i].fom, first.items[i].fom);
    }
  }
}

TEST(Service, ConcurrentSubmitsFromPoolWorkers) {
  ServiceConfig cfg = fast_config();
  cfg.queue_max = 256;
  ServeFixture f(cfg);
  f.service.start();
  constexpr int kN = 24;
  std::vector<GenerationService::Ticket> tickets(kN);
  std::mutex mu;
  parallel_for(0, static_cast<std::size_t>(kN), [&](std::size_t i) {
    Request req;
    req.seed = 100 + i;
    auto t = f.service.submit(req);
    std::lock_guard<std::mutex> lk(mu);
    tickets[i] = std::move(t);
  });
  int ok = 0;
  for (auto& t : tickets) {
    const Response r = t.response.get();
    EXPECT_TRUE(r.status == Status::kOk || r.status == Status::kRejected);
    if (r.status == Status::kOk) ++ok;
  }
  EXPECT_GT(ok, 0);
}

TEST(Service, DrainCompletesAdmittedThenRejectsNew) {
  ServeFixture f(fast_config());
  auto t1 = f.service.submit({});
  auto t2 = f.service.submit({});
  f.service.drain();  // never started: drain() must still complete both
  EXPECT_EQ(t1.response.get().status, Status::kOk);
  EXPECT_EQ(t2.response.get().status, Status::kOk);
  auto t3 = f.service.submit({});
  EXPECT_EQ(t3.response.get().status, Status::kShutdown);
}

TEST(Service, SigtermDrainCompletesAdmittedRequests) {
  train::clear_stop();
  ServeFixture f(fast_config());
  auto t1 = f.service.submit({});
  auto t2 = f.service.submit({});
  train::request_stop();  // what the SIGTERM handler does
  f.service.start();
  f.service.drain();
  EXPECT_EQ(t1.response.get().status, Status::kOk);
  EXPECT_EQ(t2.response.get().status, Status::kOk);
  auto t3 = f.service.submit({});
  EXPECT_EQ(t3.response.get().status, Status::kShutdown);
  train::clear_stop();
}

TEST(Service, LatencyHistogramRecordsCompletions) {
  ServeFixture f(fast_config());
  f.service.start();
  const auto before = obs::histogram("serve.latency_ms").snapshot().count;
  (void)f.service.submit({}).response.get();
  const auto after = obs::histogram("serve.latency_ms").snapshot().count;
  EXPECT_GT(after, before);
}

// --- Request timelines (DESIGN.md "Request timelines & load harness") --------

TEST(Timeline, StagesAttributeTheEndToEndLatency) {
  ServeFixture f(fast_config());
  f.service.start();
  Request req;
  req.n = 2;
  req.seed = 21;
  auto t = f.service.submit(req);
  Response r = t.response.get();
  ASSERT_EQ(r.status, Status::kOk);

  // The timeline carries the ticket's id and real decode work.
  EXPECT_EQ(r.timeline.request_id, t.id);
  EXPECT_GT(r.timeline.tokens, 0);
  EXPECT_GT(r.timeline.decode_steps, 0);
  EXPECT_GT(r.timeline.ms(Stage::kDecode), 0.0);

  // queue + decode + cache + verify must explain the service-side
  // latency: the stages are timed independently of latency_ms, so a
  // large gap means a stage fell out of the attribution.
  const double sum = r.timeline.service_sum_ms();
  EXPECT_GT(sum, 0.0);
  EXPECT_LE(sum, r.latency_ms * 1.05 + 1.0);
  EXPECT_GE(sum, r.latency_ms * 0.5 - 1.0);
}

TEST(Timeline, TimeoutIsAttributedToQueueWait) {
  ServeFixture f(fast_config());
  f.service.start();
  Request blocker;
  blocker.n = 6;  // park a long decode in front
  auto slow = f.service.submit(blocker);
  Request req;
  req.deadline_ms = 1.0;
  auto t = f.service.submit(req);
  Response r = t.response.get();
  (void)slow.response.get();
  ASSERT_EQ(r.status, Status::kTimeout);
  // A timed-out request never decoded: its latency is pure queue wait,
  // and the terminator still carries its id.
  EXPECT_EQ(r.timeline.request_id, t.id);
  EXPECT_GT(r.timeline.ms(Stage::kQueue), 0.0);
  EXPECT_DOUBLE_EQ(r.timeline.ms(Stage::kDecode), 0.0);
  // Completing past the deadline bumps the dedicated counter.
  EXPECT_GT(obs::counter("serve.deadline_exceeded").value(), 0);
}

TEST(Timeline, StageNamesAndSlidingMetricsRecorded) {
  EXPECT_EQ(stage_name(Stage::kQueue), "queue");
  EXPECT_EQ(stage_name(Stage::kWrite), "write");
  RequestTimeline tl;
  tl.add(Stage::kDecode, 2.0);
  tl.add(Stage::kDecode, 3.0);
  tl.add(Stage::kVerify, 1.0);
  EXPECT_DOUBLE_EQ(tl.ms(Stage::kDecode), 5.0);
  EXPECT_DOUBLE_EQ(tl.service_sum_ms(), 6.0);

  const auto before =
      obs::sliding_histogram("serve.stage.decode_ms").total_snapshot().count;
  record_timeline_metrics(tl, /*all_stages=*/true);
  const auto after =
      obs::sliding_histogram("serve.stage.decode_ms").total_snapshot().count;
  EXPECT_EQ(after, before + 1);
}

TEST(Timeline, SlowWarnBudgetComesFromEnv) {
  ::unsetenv("EVA_SERVE_SLOW_MS");
  EXPECT_DOUBLE_EQ(slow_warn_ms_from_env(0.0), 0.0);
  ::setenv("EVA_SERVE_SLOW_MS", "250", 1);
  EXPECT_DOUBLE_EQ(slow_warn_ms_from_env(0.0), 250.0);
  ::setenv("EVA_SERVE_SLOW_MS", "garbage", 1);
  EXPECT_DOUBLE_EQ(slow_warn_ms_from_env(7.0), 7.0);
  ::unsetenv("EVA_SERVE_SLOW_MS");
}

// --- ResultCache -------------------------------------------------------------

TEST(ResultCacheTest, PutGetAndTypeSeparation) {
  ResultCache cache(64);
  const std::uint64_t h = 0xDEADBEEFULL;
  cache.put(ResultCache::key_for(h, 0), {true, 2.5});
  const auto hit = cache.get(ResultCache::key_for(h, 0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->valid);
  EXPECT_DOUBLE_EQ(hit->fom, 2.5);
  // Same topology under a different target type is a distinct entry.
  EXPECT_FALSE(cache.get(ResultCache::key_for(h, 1)).has_value());
}

TEST(ResultCacheTest, BoundedLruEvictsOldEntries) {
  ResultCache cache(16, /*shards=*/1);
  for (std::uint64_t i = 0; i < 64; ++i) {
    cache.put(i * 7919 + 1, {true, static_cast<double>(i)});
  }
  EXPECT_LE(cache.size(), 16u);
  // The newest entry survives.
  EXPECT_TRUE(cache.get(63 * 7919 + 1).has_value());
}

TEST(ResultCacheTest, GetRefreshesRecency) {
  ResultCache cache(4, /*shards=*/1);
  for (std::uint64_t k = 1; k <= 4; ++k) cache.put(k, {true, 0.0});
  ASSERT_TRUE(cache.get(1).has_value());  // refresh key 1
  cache.put(5, {true, 0.0});              // evicts key 2, not key 1
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
}

// --- wire protocol -----------------------------------------------------------

TEST(Protocol, ParsesFullRequest) {
  std::string err;
  const auto req = parse_request(
      R"({"type":"Ldo","n":4,"temperature":0.5,"deadline_ms":250,)"
      R"("priority":"high","seed":9})",
      &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->type, circuit::CircuitType::Ldo);
  EXPECT_EQ(req->n, 4);
  EXPECT_FLOAT_EQ(req->temperature, 0.5f);
  EXPECT_DOUBLE_EQ(req->deadline_ms, 250.0);
  EXPECT_EQ(req->priority, Priority::kHigh);
  EXPECT_EQ(req->seed, 9u);
}

TEST(Protocol, EmptyObjectYieldsDefaults) {
  std::string err;
  const auto req = parse_request("{}", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->type, circuit::CircuitType::OpAmp);
  EXPECT_EQ(req->n, 1);
  EXPECT_EQ(req->priority, Priority::kNormal);
  EXPECT_EQ(req->seed, 0u);
}

TEST(Protocol, RejectsMalformedInput) {
  std::string err;
  EXPECT_FALSE(parse_request("", &err).has_value());
  EXPECT_FALSE(parse_request("not json", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"n":)", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"n":0})", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"type":"NoSuchType"})", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"priority":"urgent"})", &err).has_value());
  // Nesting is out of grammar by design.
  EXPECT_FALSE(parse_request(R"({"a":{"b":1}})", &err).has_value());
  EXPECT_FALSE(parse_request(R"({"a":[1,2]})", &err).has_value());
  // Trailing garbage after the object.
  EXPECT_FALSE(parse_request(R"({"n":1} extra)", &err).has_value());
  // Unbounded strings are truncated into an error, not memory.
  EXPECT_FALSE(
      parse_request("{\"type\":\"" + std::string(5000, 'x') + "\"}", &err)
          .has_value());
}

TEST(Protocol, IgnoresUnknownKeys) {
  std::string err;
  const auto req = parse_request(R"({"n":2,"future_field":"yes"})", &err);
  ASSERT_TRUE(req.has_value()) << err;
  EXPECT_EQ(req->n, 2);
}

TEST(Protocol, EmitsItemAndTerminator) {
  Item item;
  item.netlist = "M1 \"quoted\"";
  item.decoded = true;
  item.valid = true;
  item.fom = 1.5;
  const std::string j = item_to_json(item);
  EXPECT_NE(j.find("\"valid\": true"), std::string::npos);
  EXPECT_NE(j.find("\\\"quoted\\\""), std::string::npos);

  Response r;
  r.status = Status::kRejected;
  r.retry_after_ms = 50.0;
  const std::string d = done_to_json(r);
  EXPECT_NE(d.find("\"done\": true"), std::string::npos);
  EXPECT_NE(d.find("\"rejected\""), std::string::npos);
  EXPECT_NE(d.find("retry_after_ms"), std::string::npos);
}

TEST(Protocol, ParseLineDistinguishesStatsFromGenerate) {
  std::string err;
  const auto stats = parse_line("{\"cmd\": \"stats\"}", &err);
  ASSERT_TRUE(stats.has_value()) << err;
  EXPECT_EQ(stats->kind, ParsedLine::Kind::kStats);

  const auto gen = parse_line("{\"cmd\": \"generate\", \"n\": 2}", &err);
  ASSERT_TRUE(gen.has_value()) << err;
  EXPECT_EQ(gen->kind, ParsedLine::Kind::kGenerate);
  EXPECT_EQ(gen->req.n, 2);

  // Unknown commands are a parse error, not a silent default.
  EXPECT_FALSE(parse_line("{\"cmd\": \"reboot\"}", &err).has_value());
  EXPECT_NE(err.find("unknown cmd"), std::string::npos) << err;

  // parse_request refuses a stats line: callers asking for a generation
  // request must not receive default-constructed junk.
  EXPECT_FALSE(parse_request("{\"cmd\": \"stats\"}", &err).has_value());
}

TEST(Protocol, TerminatorCarriesRequestIdAndStages) {
  Response r;
  r.status = Status::kOk;
  r.latency_ms = 12.5;
  r.timeline.request_id = 17;
  r.timeline.tokens = 96;
  r.timeline.add(Stage::kQueue, 0.5);
  r.timeline.add(Stage::kDecode, 10.0);
  const std::string d = done_to_json(r);
  EXPECT_TRUE(eva::testutil::json_valid(d)) << d;
  EXPECT_NE(d.find("\"request_id\": 17"), std::string::npos);
  EXPECT_NE(d.find("\"tokens\": 96"), std::string::npos);
  EXPECT_NE(d.find("\"queue_ms\": 0.5"), std::string::npos);
  EXPECT_NE(d.find("\"decode_ms\": 10"), std::string::npos);

  // Rejected requests never entered the queue: no stage object.
  Response rej;
  rej.status = Status::kRejected;
  rej.timeline.request_id = 18;
  const std::string dr = done_to_json(rej);
  EXPECT_TRUE(eva::testutil::json_valid(dr)) << dr;
  EXPECT_NE(dr.find("\"request_id\": 18"), std::string::npos);
  EXPECT_EQ(dr.find("\"stages\""), std::string::npos);

  Item item;
  item.netlist = "M1";
  const std::string j = item_to_json(item, 17);
  EXPECT_NE(j.find("\"request_id\": 17"), std::string::npos);
}

// --- Live stats snapshot ------------------------------------------------------

TEST(Stats, SnapshotIsWellFormedAndCoversTheService) {
  ServeFixture f(fast_config());
  f.service.start();
  Request req;
  req.n = 1;
  req.seed = 33;
  (void)f.service.submit(req).response.get();

  const std::string json = stats_json(f.service);
  EXPECT_TRUE(eva::testutil::json_valid(json)) << json;
  // Stage percentiles: a window and a since-start view per stage.
  for (const char* key :
       {"\"queue\"", "\"decode\"", "\"cache\"", "\"verify\"", "\"write\"",
        "\"e2e\"", "\"window\"", "\"total\"", "\"p99\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing\n"
                                                 << json;
  }
  // Live service state: queue depths, occupancy, cache and request
  // counters, backend dispatch counts.
  for (const char* key :
       {"\"queue_depth\"", "\"batch_occupancy\"", "\"cache\"",
        "\"hit_rate\"", "\"requests\"", "\"submitted\"", "\"backends\"",
        "\"uptime_s\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing\n"
                                                 << json;
  }

  const std::string line = stats_response_json(f.service);
  EXPECT_TRUE(eva::testutil::json_valid(line)) << line;
  EXPECT_NE(line.find("\"done\": true"), std::string::npos);
  EXPECT_NE(line.find("\"cmd\": \"stats\""), std::string::npos);
}

TEST(Stats, QueueDepthsReflectParkedRequests) {
  ServiceConfig cfg = fast_config();
  ServeFixture f(cfg);
  // Not started: submissions park in their priority queues.
  Request lo;
  lo.priority = Priority::kLow;
  Request hi;
  hi.priority = Priority::kHigh;
  auto t1 = f.service.submit(lo);
  auto t2 = f.service.submit(lo);
  auto t3 = f.service.submit(hi);
  const auto depths = f.service.queue_depths();
  EXPECT_EQ(depths[static_cast<int>(Priority::kHigh)], 1u);
  EXPECT_EQ(depths[static_cast<int>(Priority::kLow)], 2u);
  f.service.start();
  (void)t1.response.get();
  (void)t2.response.get();
  (void)t3.response.get();
}

// --- TCP loopback ------------------------------------------------------------

int connect_loopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  for (int tries = 0; tries < 50; ++tries) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return fd;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::close(fd);
  return -1;
}

bool send_all(int fd, const std::string& s) {
  std::size_t off = 0;
  while (off < s.size()) {
    const ssize_t n = ::send(fd, s.data() + off, s.size() - off, 0);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read lines until `want_done` lines containing "done" arrive (or EOF).
std::vector<std::string> read_lines_until_done(int fd, int want_done) {
  std::vector<std::string> lines;
  std::string buf;
  char chunk[4096];
  int done = 0;
  while (done < want_done) {
    std::size_t nl;
    while (done < want_done && (nl = buf.find('\n')) != std::string::npos) {
      lines.push_back(buf.substr(0, nl));
      if (lines.back().find("\"done\"") != std::string::npos) ++done;
      buf.erase(0, nl + 1);
    }
    if (done >= want_done) break;
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
  }
  return lines;
}

TEST(TcpServer, LoopbackRoundTripAndBadRequest) {
  train::clear_stop();
  ServeFixture f(fast_config());
  ServerConfig scfg;
  scfg.port = 0;  // ephemeral
  JsonLineServer server(f.service, scfg);
  const int port = server.listen_and_start();
  ASSERT_GT(port, 0);

  const int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(send_all(fd, "{\"n\":2,\"seed\":3}\nnot json\n"));
  const auto lines = read_lines_until_done(fd, 2);
  // 2 item lines + ok terminator + bad_request terminator.
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_NE(lines[0].find("\"netlist\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(lines[3].find("bad_request"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(TcpServer, StatsCommandAnsweredInlineAndUnknownCmdRejected) {
  train::clear_stop();
  ServeFixture f(fast_config());
  ServerConfig scfg;
  scfg.port = 0;
  JsonLineServer server(f.service, scfg);
  const int port = server.listen_and_start();
  ASSERT_GT(port, 0);

  const int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);
  // generate, stats, unknown cmd — all on one connection, in order.
  ASSERT_TRUE(send_all(
      fd, "{\"n\":1,\"seed\":5}\n{\"cmd\":\"stats\"}\n{\"cmd\":\"flush\"}\n"));
  const auto lines = read_lines_until_done(fd, 3);
  ASSERT_EQ(lines.size(), 4u);  // item + ok + stats + bad_request
  EXPECT_NE(lines[1].find("\"status\": \"ok\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"stages\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"request_id\""), std::string::npos);

  const std::string& stats = lines[2];
  EXPECT_TRUE(eva::testutil::json_valid(stats)) << stats;
  EXPECT_NE(stats.find("\"cmd\": \"stats\""), std::string::npos);
  // The generate round trip above is already visible in the snapshot.
  EXPECT_NE(stats.find("\"completed\""), std::string::npos);

  EXPECT_NE(lines[3].find("bad_request"), std::string::npos);
  EXPECT_NE(lines[3].find("unknown cmd"), std::string::npos);
  ::close(fd);
  server.stop();
}

TEST(TcpServer, AcceptFaultDropsFirstConnection) {
  train::clear_stop();
  fault::set_spec("serve_accept:1");
  ServeFixture f(fast_config());
  ServerConfig scfg;
  scfg.port = 0;
  JsonLineServer server(f.service, scfg);
  const int port = server.listen_and_start();

  // First connection is accepted then immediately dropped by the fault;
  // the retry goes through.
  const int fd1 = connect_loopback(port);
  ASSERT_GE(fd1, 0);
  char byte;
  // Give the acceptor a moment to process (poll granularity), then the
  // injected close surfaces as EOF.
  EXPECT_LE(::recv(fd1, &byte, 1, 0), 0);
  ::close(fd1);

  const int fd2 = connect_loopback(port);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(send_all(fd2, "{\"seed\":8}\n"));
  const auto lines = read_lines_until_done(fd2, 1);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"status\": \"ok\""), std::string::npos);
  ::close(fd2);
  server.stop();
  fault::set_spec("");
}

TEST(TcpServer, IdleConnectionIsClosedAfterTimeout) {
  train::clear_stop();
  ServeFixture f(fast_config());
  ServerConfig scfg;
  scfg.port = 0;
  scfg.idle_ms = 150.0;  // EVA_SERVE_IDLE_MS equivalent
  JsonLineServer server(f.service, scfg);
  const int port = server.listen_and_start();

  const auto before = obs::counter("serve.idle_timeouts").value();
  const int fd = connect_loopback(port);
  ASSERT_GE(fd, 0);
  // Send nothing: the server must hang up on its own, surfacing as EOF
  // here well before this generous deadline.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  char byte;
  ssize_t n = -1;
  while (std::chrono::steady_clock::now() < give_up) {
    n = ::recv(fd, &byte, 1, MSG_DONTWAIT);
    if (n == 0) break;  // clean close from the server
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(n, 0) << "idle connection must be closed by the server";
  EXPECT_GT(obs::counter("serve.idle_timeouts").value(), before);
  ::close(fd);

  // A connection that keeps talking is never idle-closed mid-exchange.
  const int fd2 = connect_loopback(port);
  ASSERT_GE(fd2, 0);
  ASSERT_TRUE(send_all(fd2, "{\"seed\":8}\n"));
  const auto lines = read_lines_until_done(fd2, 1);
  ASSERT_FALSE(lines.empty());
  EXPECT_NE(lines.back().find("\"status\": \"ok\""), std::string::npos);
  ::close(fd2);
  server.stop();
}

// --- hardened ids_to_netlist --------------------------------------------------

TEST(NetlistDecodeChecked, FlagsOutOfRangeTokens) {
  const auto tok = small_tokenizer();
  const auto res =
      nn::ids_to_netlist_checked(tok, {tok.start_token(), tok.vocab_size()});
  EXPECT_EQ(res.fail, nn::NetlistDecode::Fail::kTokenOutOfRange);
  EXPECT_FALSE(res.ok());
  EXPECT_FALSE(res.message.empty());

  const auto neg = nn::ids_to_netlist_checked(tok, {-1});
  EXPECT_EQ(neg.fail, nn::NetlistDecode::Fail::kTokenOutOfRange);
}

TEST(NetlistDecodeChecked, FlagsEmptyAndTruncated) {
  const auto tok = small_tokenizer();
  EXPECT_EQ(nn::ids_to_netlist_checked(tok, {}).fail,
            nn::NetlistDecode::Fail::kEmpty);
  EXPECT_EQ(nn::ids_to_netlist_checked(tok, {nn::Tokenizer::kEos}).fail,
            nn::NetlistDecode::Fail::kEmpty);
  // A lone VSS token is in-vocab but not a decodable tour.
  const auto res = nn::ids_to_netlist_checked(tok, {tok.start_token()});
  EXPECT_EQ(res.fail, nn::NetlistDecode::Fail::kBadStructure);
}

TEST(NetlistDecodeChecked, RoundTripsValidTour) {
  const auto tok = small_tokenizer();
  Rng rng(17);
  const auto nl = data::generate(circuit::CircuitType::OpAmp, rng);
  const auto tour = circuit::encode_tour(nl, rng);
  const auto ids = tok.encode_tour(tour);
  const auto res = nn::ids_to_netlist_checked(tok, ids);
  ASSERT_TRUE(res.ok()) << res.message;
  EXPECT_EQ(circuit::canonical_hash(*res.netlist), circuit::canonical_hash(nl));
}

TEST(NetlistDecodeChecked, FuzzNeverThrowsOrAborts) {
  // Adversarial fuzz: random byte soup in and around the vocab range.
  // The contract is total: some outcome, never an exception or abort.
  const auto tok = small_tokenizer();
  Rng rng(0xFADE);
  const int vocab = tok.vocab_size();
  for (int iter = 0; iter < 500; ++iter) {
    const int len = static_cast<int>(rng.uniform() * 40.0);
    std::vector<int> ids;
    ids.reserve(static_cast<std::size_t>(len));
    for (int i = 0; i < len; ++i) {
      // Mostly in-vocab, sometimes wildly out (including negatives).
      const double u = rng.uniform();
      if (u < 0.8) {
        ids.push_back(static_cast<int>(rng.uniform() * vocab));
      } else if (u < 0.9) {
        ids.push_back(vocab + static_cast<int>(rng.uniform() * 1000.0));
      } else {
        ids.push_back(-1 - static_cast<int>(rng.uniform() * 1000.0));
      }
    }
    EXPECT_NO_THROW({
      const auto res = nn::ids_to_netlist_checked(tok, ids);
      if (res.ok()) {
        EXPECT_TRUE(res.message.empty());
      } else {
        EXPECT_FALSE(res.message.empty());
      }
    });
  }
}

// --- WL canonical hash --------------------------------------------------------

/// Two-stage amplifier built with a permutation-controlled device order:
/// any order must hash identically (isomorphic netlists).
circuit::Netlist two_stage(bool flip_order, bool rewire_one_pin = false) {
  using circuit::DeviceKind;
  using circuit::IoPin;
  data::NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("out", IoPin::Vout1);
  auto stage1 = [&] {
    b.mos(DeviceKind::Nmos, "in", "mid", "VSS");
    b.two(DeviceKind::Resistor, "VDD", "mid");
  };
  auto stage2 = [&] {
    // The near-miss rewires exactly one pin: gate taken from "in"
    // instead of "mid" (a structurally different amplifier).
    b.mos(DeviceKind::Nmos, rewire_one_pin ? "in" : "mid", "out", "VSS");
    b.two(DeviceKind::Resistor, "VDD", "out");
  };
  if (flip_order) {
    stage2();
    stage1();
  } else {
    stage1();
    stage2();
  }
  return b.take();
}

TEST(CanonHash, IsomorphicPairsHashEqual) {
  EXPECT_EQ(circuit::canonical_hash(two_stage(false)),
            circuit::canonical_hash(two_stage(true)));
  // Property over generated circuits: encode/decode renumbers devices,
  // producing an isomorphic copy.
  for (int i = 0; i < 5; ++i) {
    Rng rng(1000 + i);
    const auto nl = data::generate(circuit::CircuitType::Comparator, rng);
    const auto res = circuit::decode_tour(circuit::encode_tour(nl, rng));
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(circuit::canonical_hash(res.netlist),
              circuit::canonical_hash(nl));
  }
}

TEST(CanonHash, NearMissSinglePinRewireDiffers) {
  EXPECT_NE(circuit::canonical_hash(two_stage(false, false)),
            circuit::canonical_hash(two_stage(false, true)));
}

TEST(CanonHash, StableAcrossThreadCounts) {
  const auto nl = two_stage(false);
  const std::size_t saved = num_threads();
  set_num_threads(1);
  const std::uint64_t h1 = circuit::canonical_hash(nl);
  set_num_threads(4);
  const std::uint64_t h4 = circuit::canonical_hash(nl);
  set_num_threads(saved);
  EXPECT_EQ(h1, h4);
}

// --- periodic metrics flush ---------------------------------------------------

TEST(MetricsFlush, ExportNowAndPeriodicFlusher) {
  const std::string path = ::testing::TempDir() + "eva_serve_metrics.json";
  std::remove(path.c_str());
  ::setenv("EVA_METRICS_FILE", path.c_str(), 1);
  ::setenv("EVA_METRICS_FLUSH_SEC", "0.05", 1);

  obs::counter("serve.test_flush_marker").add(3);
  EXPECT_TRUE(obs::export_now());
  {
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("serve.test_flush_marker"), std::string::npos);
  }

  // Periodic flusher rewrites the file on its cadence.
  std::remove(path.c_str());
  ASSERT_TRUE(obs::start_periodic_flush());
  EXPECT_TRUE(obs::start_periodic_flush());  // idempotent
  bool appeared = false;
  for (int i = 0; i < 100 && !appeared; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    appeared = std::ifstream(path).good();
  }
  obs::stop_periodic_flush();
  obs::stop_periodic_flush();  // idempotent
  EXPECT_TRUE(appeared);

  // export_now still works after the flusher is gone (atexit parity).
  std::remove(path.c_str());
  EXPECT_TRUE(obs::export_now());
  EXPECT_TRUE(std::ifstream(path).good());

  std::remove(path.c_str());
  ::unsetenv("EVA_METRICS_FILE");
  ::unsetenv("EVA_METRICS_FLUSH_SEC");
}

TEST(MetricsFlush, FlusherNeedsConfiguredInterval) {
  ::unsetenv("EVA_METRICS_FLUSH_SEC");
  EXPECT_FALSE(obs::start_periodic_flush());
  ::setenv("EVA_METRICS_FLUSH_SEC", "not a number", 1);
  EXPECT_FALSE(obs::start_periodic_flush());
  ::setenv("EVA_METRICS_FLUSH_SEC", "-1", 1);
  EXPECT_FALSE(obs::start_periodic_flush());
  ::unsetenv("EVA_METRICS_FLUSH_SEC");
}

}  // namespace
