// Unit + property tests for the circuit substrate: netlists, the pin-level
// multigraph, Euler tours and decoding, validity, canonical hashing,
// classification, graph statistics.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "circuit/canon.hpp"
#include "circuit/classify.hpp"
#include "circuit/graphstats.hpp"
#include "circuit/netlist.hpp"
#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/builder.hpp"
#include "data/generators.hpp"

namespace {

using namespace eva::circuit;
using eva::Rng;
using eva::data::NetBuilder;

/// Minimal valid circuit: NMOS common-source amp with a resistor load.
Netlist make_cs_amp() {
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("out", IoPin::Vout1);
  b.mos(DeviceKind::Nmos, "in", "out", "VSS");
  b.two(DeviceKind::Resistor, "VDD", "out");
  return b.take();
}

TEST(Netlist, AddDeviceAssignsInstanceIndices) {
  Netlist nl;
  const int a = nl.add_device(DeviceKind::Nmos);
  const int b = nl.add_device(DeviceKind::Nmos);
  const int c = nl.add_device(DeviceKind::Resistor);
  EXPECT_EQ(nl.devices()[static_cast<std::size_t>(a)].index, 1);
  EXPECT_EQ(nl.devices()[static_cast<std::size_t>(b)].index, 2);
  EXPECT_EQ(nl.devices()[static_cast<std::size_t>(c)].index, 1);
}

TEST(Netlist, PinNames) {
  Netlist nl;
  const int d = nl.add_device(DeviceKind::Nmos);
  EXPECT_EQ(nl.pin_name(dev_ref(d, mos::G)), "NM1_G");
  EXPECT_EQ(nl.pin_name(io_ref(IoPin::Vdd)), "VDD");
}

TEST(Netlist, RejectsDoubleConnection) {
  Netlist nl;
  const int d = nl.add_device(DeviceKind::Resistor);
  nl.add_net({dev_ref(d, 0), io_ref(IoPin::Vss)});
  EXPECT_THROW(nl.add_net({dev_ref(d, 0)}), eva::Error);
}

TEST(Netlist, RejectsDuplicatePinInNet) {
  Netlist nl;
  const int d = nl.add_device(DeviceKind::Resistor);
  EXPECT_THROW(nl.add_net({dev_ref(d, 0), dev_ref(d, 0)}), eva::Error);
}

TEST(Netlist, NetOfAndDisconnect) {
  Netlist nl;
  const int d = nl.add_device(DeviceKind::Resistor);
  const int n = nl.add_net({dev_ref(d, 0), io_ref(IoPin::Vss)});
  EXPECT_EQ(nl.net_of(dev_ref(d, 0)).value(), n);
  nl.disconnect(dev_ref(d, 0));
  EXPECT_FALSE(nl.net_of(dev_ref(d, 0)).has_value());
}

TEST(Netlist, IoQueriesAndSpiceDump) {
  const Netlist nl = make_cs_amp();
  EXPECT_TRUE(nl.uses_io(IoPin::Vdd));
  EXPECT_TRUE(nl.uses_io(IoPin::Vout1));
  EXPECT_FALSE(nl.uses_io(IoPin::Clk1));
  const std::string spice = nl.to_spice();
  EXPECT_NE(spice.find("NM1"), std::string::npos);
  EXPECT_NE(spice.find("VOUT1"), std::string::npos);
}

// --- pin graph / Euler tour --------------------------------------------------

TEST(PinGraph, DegreesAlwaysEven) {
  const Netlist nl = make_cs_amp();
  const PinGraph g = PinGraph::from_netlist(nl);
  EXPECT_TRUE(g.all_degrees_even());
}

TEST(PinGraph, ConnectedForValidCircuit) {
  const PinGraph g = PinGraph::from_netlist(make_cs_amp());
  EXPECT_TRUE(g.connected());
}

TEST(PinGraph, TourStartsAndEndsAtVss) {
  Rng rng(1);
  const auto tour = encode_tour(make_cs_amp(), rng);
  ASSERT_GE(tour.size(), 3u);
  EXPECT_TRUE(tour.front().is_io && tour.front().io == IoPin::Vss);
  EXPECT_TRUE(tour.back().is_io && tour.back().io == IoPin::Vss);
}

TEST(PinGraph, TourLengthIsEdgesPlusOne) {
  const Netlist nl = make_cs_amp();
  const PinGraph g = PinGraph::from_netlist(nl);
  Rng rng(2);
  EXPECT_EQ(g.euler_tour(rng).size(), g.num_edges() + 1);
}

TEST(PinGraph, TourUsesEachEdgeOnce) {
  const Netlist nl = make_cs_amp();
  const PinGraph g = PinGraph::from_netlist(nl);
  Rng rng(3);
  const auto tour = g.euler_tour(rng);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> used;
  for (std::size_t i = 0; i + 1 < tour.size(); ++i) {
    auto a = pack_token(tour[i]);
    auto b = pack_token(tour[i + 1]);
    if (a > b) std::swap(a, b);
    ++used[{a, b}];
  }
  std::size_t total = 0;
  for (const auto& [k, v] : used) {
    (void)k;
    total += static_cast<std::size_t>(v);
  }
  EXPECT_EQ(total, g.num_edges());
}

TEST(PinGraph, RandomizedToursDiffer) {
  const Netlist nl = make_cs_amp();
  Rng r1(10), r2(20);
  std::set<std::string> tours;
  for (int i = 0; i < 8; ++i) {
    std::string s;
    for (const auto& t : encode_tour(nl, r1)) s += t.name() + " ";
    tours.insert(s);
  }
  // Sequence augmentation: several distinct tours of the same topology.
  EXPECT_GT(tours.size(), 1u);
}

TEST(PinGraph, ThrowsWithoutVss) {
  NetBuilder b;
  b.io("VDD", IoPin::Vdd);
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  const Netlist nl = b.take();
  Rng rng(4);
  EXPECT_THROW(encode_tour(nl, rng), eva::CircuitError);
}

TEST(PinGraph, PackUnpackRoundTrip) {
  const PinToken a = dev_token(DeviceKind::Pmos, 7, 2);
  const PinToken b = io_token(IoPin::Vout2);
  EXPECT_TRUE(unpack_token(pack_token(a)) == a);
  EXPECT_TRUE(unpack_token(pack_token(b)) == b);
}

TEST(Decode, RoundTripPreservesTopology) {
  const Netlist nl = make_cs_amp();
  Rng rng(5);
  const auto tour = encode_tour(nl, rng);
  const DecodeResult res = decode_tour(tour);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(res.floating_pins, 0);
  EXPECT_EQ(canonical_hash(res.netlist), canonical_hash(nl));
}

TEST(Decode, RejectsTruncatedTour) {
  Rng rng(6);
  auto tour = encode_tour(make_cs_amp(), rng);
  tour.pop_back();  // no longer returns to VSS
  EXPECT_FALSE(decode_tour(tour).ok);
}

TEST(Decode, RejectsSelfLoop) {
  std::vector<PinToken> tour{io_token(IoPin::Vss), io_token(IoPin::Vss)};
  EXPECT_FALSE(decode_tour(tour).ok);
}

TEST(Decode, RejectsWrongStart) {
  Rng rng(7);
  auto tour = encode_tour(make_cs_amp(), rng);
  tour.front() = io_token(IoPin::Vdd);
  EXPECT_FALSE(decode_tour(tour).ok);
}

TEST(Decode, RejectsIncompleteDeviceCycle) {
  // A walk VSS -> NM1_G -> VSS mentions NM1 but never closes its cycle.
  std::vector<PinToken> tour{io_token(IoPin::Vss),
                             dev_token(DeviceKind::Nmos, 1, mos::G),
                             io_token(IoPin::Vss)};
  const auto res = decode_tour(tour);
  EXPECT_FALSE(res.ok);
  EXPECT_NE(res.error.find("device cycle"), std::string::npos);
}

TEST(Decode, DiodeConnectedMosRoundTrip) {
  // Diode-connected NMOS (G and D in one net) must survive the multiset
  // subtraction logic.
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  const int d = b.netlist().add_device(DeviceKind::Nmos);
  b.netlist().connect(b.net("out"), dev_ref(d, mos::G));
  b.netlist().connect(b.net("out"), dev_ref(d, mos::D));
  b.netlist().connect(b.net("VSS"), dev_ref(d, mos::S));
  b.netlist().connect(b.net("VSS"), dev_ref(d, mos::B));
  b.two(DeviceKind::Resistor, "VDD", "out");
  const Netlist nl = b.take();
  Rng rng(8);
  const auto res = decode_tour(encode_tour(nl, rng));
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(canonical_hash(res.netlist), canonical_hash(nl));
}

// Property: round trip across many random topologies of all types.
class RoundTripAllTypes : public ::testing::TestWithParam<CircuitType> {};

TEST_P(RoundTripAllTypes, EncodeDecodeIsIdentityUpToRenaming) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 77 + 3);
  for (int i = 0; i < 10; ++i) {
    const Netlist nl = eva::data::generate(GetParam(), rng);
    const auto tour = encode_tour(nl, rng);
    const auto res = decode_tour(tour);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(canonical_hash(res.netlist), canonical_hash(nl));
    EXPECT_EQ(res.netlist.num_devices(), nl.num_devices());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, RoundTripAllTypes,
    ::testing::Values(CircuitType::OpAmp, CircuitType::Ldo,
                      CircuitType::Bandgap, CircuitType::Comparator,
                      CircuitType::Pll, CircuitType::Lna, CircuitType::Pa,
                      CircuitType::Mixer, CircuitType::Vco,
                      CircuitType::PowerConverter, CircuitType::ScSampler));

// --- validity ---------------------------------------------------------------

TEST(Validity, AcceptsWellFormedCircuit) {
  EXPECT_TRUE(structurally_valid(make_cs_amp()));
}

TEST(Validity, RejectsEmptyNetlist) {
  Netlist nl;
  const auto rep = check_structure(nl);
  EXPECT_FALSE(rep.valid);
}

TEST(Validity, RejectsMissingVdd) {
  NetBuilder b;
  b.io("VSS", IoPin::Vss);
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VSS", "out");
  EXPECT_FALSE(structurally_valid(b.take()));
}

TEST(Validity, RejectsSupplyShort) {
  // Build a net that contains both rails directly.
  Netlist nl;
  const int r = nl.add_device(DeviceKind::Resistor);
  nl.add_net({io_ref(IoPin::Vdd), io_ref(IoPin::Vss), dev_ref(r, 0)});
  nl.add_net({dev_ref(r, 1), io_ref(IoPin::Vout1)});
  const auto rep = check_structure(nl);
  EXPECT_FALSE(rep.valid);
}

TEST(Validity, RejectsFloatingPin) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  const int d = b.netlist().add_device(DeviceKind::Nmos);
  // Only connect three of four pins.
  b.netlist().connect(b.net("out"), dev_ref(d, mos::G));
  b.netlist().connect(b.net("VDD"), dev_ref(d, mos::D));
  b.netlist().connect(b.net("VSS"), dev_ref(d, mos::S));
  const auto rep = check_structure(b.netlist());
  EXPECT_FALSE(rep.valid);
}

TEST(Validity, RejectsFullyShortedDevice) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  b.mos(DeviceKind::Nmos, "out", "out", "out", "out");
  EXPECT_FALSE(structurally_valid(b.netlist()));
}

TEST(Validity, RejectsDisconnectedIsland) {
  NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.mos(DeviceKind::Nmos, "VDD", "out", "VSS");
  // Electrically isolated RC island.
  b.two(DeviceKind::Resistor, "island1", "island2");
  b.two(DeviceKind::Capacitor, "island1", "island2");
  EXPECT_FALSE(structurally_valid(b.take()));
}

TEST(Validity, RejectsNoOutput) {
  NetBuilder b;
  b.rails();
  b.two(DeviceKind::Resistor, "VDD", "mid");
  b.two(DeviceKind::Resistor, "mid", "VSS");
  EXPECT_FALSE(structurally_valid(b.take()));
}

// --- canonical hash ----------------------------------------------------------

TEST(Canon, InvariantUnderDeviceOrder) {
  // Same circuit, devices added in different orders.
  auto build = [](bool flip) {
    NetBuilder b;
    b.rails();
    b.io("out", IoPin::Vout1);
    if (flip) {
      b.two(DeviceKind::Resistor, "VDD", "out");
      b.mos(DeviceKind::Nmos, "VDD", "out", "VSS");
    } else {
      b.mos(DeviceKind::Nmos, "VDD", "out", "VSS");
      b.two(DeviceKind::Resistor, "VDD", "out");
    }
    return b.take();
  };
  EXPECT_EQ(canonical_hash(build(false)), canonical_hash(build(true)));
}

TEST(Canon, DistinguishesPinRoles) {
  // Gate-to-out vs drain-to-out are different topologies.
  auto build = [](bool gate_on_out) {
    NetBuilder b;
    b.rails();
    b.io("out", IoPin::Vout1);
    b.two(DeviceKind::Resistor, "VDD", "out");
    if (gate_on_out) {
      b.mos(DeviceKind::Nmos, "out", "VDD", "VSS");
    } else {
      b.mos(DeviceKind::Nmos, "VDD", "out", "VSS");
    }
    return b.take();
  };
  EXPECT_NE(canonical_hash(build(true)), canonical_hash(build(false)));
}

TEST(Canon, DistinguishesDeviceKinds) {
  auto build = [](DeviceKind k) {
    NetBuilder b;
    b.rails();
    b.io("out", IoPin::Vout1);
    b.two(k, "VDD", "out");
    b.two(DeviceKind::Resistor, "out", "VSS");
    return b.take();
  };
  EXPECT_NE(canonical_hash(build(DeviceKind::Resistor)),
            canonical_hash(build(DeviceKind::Capacitor)));
}

TEST(Canon, SensitiveToExtraDevice) {
  Netlist base = make_cs_amp();
  const std::uint64_t h1 = canonical_hash(base);
  NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("out", IoPin::Vout1);
  b.mos(DeviceKind::Nmos, "in", "out", "VSS");
  b.two(DeviceKind::Resistor, "VDD", "out");
  b.two(DeviceKind::Capacitor, "out", "VSS");
  EXPECT_NE(h1, canonical_hash(b.take()));
}

// --- classification -----------------------------------------------------------

class ClassifyGenerated : public ::testing::TestWithParam<CircuitType> {};

TEST_P(ClassifyGenerated, GeneratorMatchesClassifier) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 11);
  int agree = 0;
  const int n = 25;
  for (int i = 0; i < n; ++i) {
    const Netlist nl = eva::data::generate(GetParam(), rng);
    if (classify(nl) == GetParam()) ++agree;
  }
  // Generators and the rule-based classifier must be strongly consistent.
  EXPECT_GE(agree, n * 4 / 5)
      << "type " << type_name(GetParam()) << " agree=" << agree;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, ClassifyGenerated,
    ::testing::Values(CircuitType::OpAmp, CircuitType::Ldo,
                      CircuitType::Bandgap, CircuitType::Comparator,
                      CircuitType::Pll, CircuitType::Lna, CircuitType::Pa,
                      CircuitType::Mixer, CircuitType::Vco,
                      CircuitType::PowerConverter, CircuitType::ScSampler));

TEST(Classify, FeaturesDetectDiffPair) {
  Rng rng(42);
  const Netlist nl = eva::data::gen_opamp(rng);
  const auto f = extract_features(nl);
  EXPECT_TRUE(f.has_diff_pair);
  EXPECT_TRUE(f.diff_pair_on_inputs);
  EXPECT_FALSE(f.uses_clk);
}

TEST(Classify, CsAmpIsUnknown) {
  // A bare common-source stage matches none of the 11 families.
  EXPECT_EQ(classify(make_cs_amp()), CircuitType::Unknown);
}

TEST(Classify, TypeNamesDistinct) {
  std::set<std::string_view> names;
  for (int t = 0; t <= static_cast<int>(CircuitType::Unknown); ++t) {
    names.insert(type_name(static_cast<CircuitType>(t)));
  }
  EXPECT_EQ(names.size(), 12u);
}

// --- graph stats -----------------------------------------------------------

TEST(GraphStats, HistogramsNormalized) {
  const auto s = graph_stats(make_cs_amp());
  double deg_sum = 0, net_sum = 0, kind_sum = 0;
  for (double v : s.degree_hist) deg_sum += v;
  for (double v : s.netsize_hist) net_sum += v;
  for (double v : s.kind_hist) kind_sum += v;
  EXPECT_NEAR(deg_sum, 1.0, 1e-9);
  EXPECT_NEAR(net_sum, 1.0, 1e-9);
  EXPECT_NEAR(kind_sum, 1.0, 1e-9);
  EXPECT_GT(s.avg_degree, 0.0);
  EXPECT_EQ(s.device_count, 2.0);
}

TEST(GraphStats, VectorFixedLength) {
  Rng rng(3);
  const auto v1 = stats_vector(make_cs_amp());
  const auto v2 = stats_vector(eva::data::gen_opamp(rng));
  EXPECT_EQ(v1.size(), v2.size());
  EXPECT_NE(v1, v2);
}

}  // namespace
