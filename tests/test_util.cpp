// Unit tests for src/util: RNG, statistics (incl. Otsu), parallel_for,
// CSV/console output helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/io.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using eva::Rng;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, IndexBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(3);
  std::set<int> seen;
  for (int i = 0; i < 300; ++i) {
    const int v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMoments) {
  Rng rng(21);
  const int n = 50000;
  double s = 0, s2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    s += x;
    s2 += x * x;
  }
  EXPECT_NEAR(s / n, 0.0, 0.03);
  EXPECT_NEAR(s2 / n, 1.0, 0.05);
}

TEST(Rng, WeightedRespectsWeights) {
  Rng rng(13);
  std::vector<double> w{0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.weighted(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ForkIndependentStreams) {
  Rng a(42);
  Rng child = a.fork();
  // Child continues to produce values uncorrelated with the parent.
  EXPECT_NE(a.next(), child.next());
}

// --- stats ---------------------------------------------------------------

TEST(Stats, MeanVariance) {
  std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(eva::mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(eva::variance(xs), 1.25);
  EXPECT_NEAR(eva::stddev(xs), std::sqrt(1.25), 1e-12);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(eva::mean({}), 0.0);
  EXPECT_DOUBLE_EQ(eva::variance({}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{3, 1, 2, 4};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(eva::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(eva::percentile(xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(eva::percentile(xs, 50), 2.5);
}

TEST(Stats, HistogramNormalized) {
  std::vector<double> xs{0.1, 0.1, 0.9};
  const auto h = eva::histogram(xs, 0.0, 1.0, 2);
  ASSERT_EQ(h.size(), 2u);
  EXPECT_NEAR(h[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(h[1], 1.0 / 3.0, 1e-12);
}

TEST(Stats, HistogramClampsOutliers) {
  std::vector<double> xs{-5.0, 10.0};
  const auto h = eva::histogram(xs, 0.0, 1.0, 4, false);
  EXPECT_DOUBLE_EQ(h.front(), 1.0);
  EXPECT_DOUBLE_EQ(h.back(), 1.0);
}

TEST(Stats, OtsuSeparatesBimodal) {
  // Two clusters at 1.0 and 10.0: the threshold must classify every
  // sample into its own cluster (Otsu may land anywhere in the gap).
  std::vector<double> xs;
  eva::Rng rng(1);
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(1.0, 0.2));
  for (int i = 0; i < 200; ++i) xs.push_back(rng.normal(10.0, 0.2));
  const double t = eva::otsu_threshold(xs);
  for (std::size_t i = 0; i < 200; ++i) EXPECT_LT(xs[i], t);
  for (std::size_t i = 200; i < 400; ++i) EXPECT_GT(xs[i], t);
}

TEST(Stats, OtsuDegenerateAllEqual) {
  std::vector<double> xs(10, 3.14);
  EXPECT_DOUBLE_EQ(eva::otsu_threshold(xs), 3.14);
}

TEST(Stats, EmaSmoothes) {
  std::vector<double> xs{0, 10, 0, 10};
  const auto y = eva::ema(xs, 0.5);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  EXPECT_DOUBLE_EQ(y[2], 2.5);
}

// --- parallel ------------------------------------------------------------

TEST(Parallel, ForCoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  eva::parallel_for(0, 1000, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunksSumCorrect) {
  std::atomic<long> sum{0};
  eva::parallel_chunks(0, 100000, [&](std::size_t b, std::size_t e) {
    long local = 0;
    for (std::size_t i = b; i < e; ++i) local += static_cast<long>(i);
    sum += local;
  });
  EXPECT_EQ(sum.load(), 100000L * 99999L / 2);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  eva::parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ThreadOverrideRespected) {
  eva::set_num_threads(1);
  EXPECT_EQ(eva::num_threads(), 1u);
  eva::set_num_threads(0);
  EXPECT_GE(eva::num_threads(), 1u);
}

// RAII helper: force a thread count for one test, restore auto after.
struct ThreadGuard {
  explicit ThreadGuard(std::size_t n) { eva::set_num_threads(n); }
  ~ThreadGuard() { eva::set_num_threads(0); }
};

TEST(Parallel, ExceptionPropagatesToCaller) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      eva::parallel_for(0, 10000,
                        [](std::size_t i) {
                          if (i == 7777) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool must stay usable after an exception drained a region.
  std::atomic<int> hits{0};
  eva::parallel_for(0, 1000, [&](std::size_t) { hits++; });
  EXPECT_EQ(hits.load(), 1000);
}

TEST(Parallel, ExceptionInChunksPropagates) {
  ThreadGuard guard(4);
  EXPECT_THROW(eva::parallel_chunks(0, 100000,
                                    [](std::size_t b, std::size_t) {
                                      if (b == 0) throw std::logic_error("c");
                                    }),
               std::logic_error);
}

TEST(Parallel, NestedCallsRunInlineWithoutDeadlock) {
  ThreadGuard guard(4);
  std::vector<std::atomic<int>> hits(64 * 64);
  eva::parallel_for(0, 64, [&](std::size_t i) {
    // Inner parallel regions must not re-enter the pool (deadlock) nor
    // drop indices; they run inline on the calling worker.
    eva::parallel_for(0, 64, [&](std::size_t j) { hits[i * 64 + j]++; });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ChunksDeterministicAcrossThreadCounts) {
  // With the chunk layout fixed by (range, num_threads), per-chunk
  // results must be bitwise identical regardless of which worker ran
  // them — only the thread *count* may change the partition.
  const std::size_t n = 4096;
  auto run = [&](std::size_t threads) {
    eva::set_num_threads(threads);
    std::vector<double> out(n, 0.0);
    eva::parallel_chunks(
        0, n,
        [&](std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            acc += std::sin(static_cast<double>(i)) * 1e-3;
            out[i] = acc;
          }
        },
        64);
    return out;
  };
  const auto serial = run(1);
  const auto fixed4_a = run(4);
  const auto fixed4_b = run(4);
  eva::set_num_threads(0);
  // Same thread count twice -> bitwise identical, even though chunk
  // scheduling across workers is nondeterministic.
  EXPECT_EQ(fixed4_a, fixed4_b);
  // Per-element prefix values only depend on the owning chunk's start.
  // The 4-thread layout is chunk = ceil(4096/4) = 1024, and the serial
  // run is one chunk starting at 0, so the first 1024 prefixes agree
  // bitwise between the two layouts.
  for (std::size_t i = 0; i < 1024; ++i) {
    ASSERT_EQ(serial[i], fixed4_a[i]) << "index " << i;
  }
}

TEST(Parallel, ManyDispatchesSmoke) {
  // Hammer the pool with many small regions to exercise the
  // generation-handoff path (stale wakeups, ticket gating).
  ThreadGuard guard(3);
  std::atomic<long> sum{0};
  for (int round = 0; round < 200; ++round) {
    eva::parallel_for(0, 64, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 200L * (64L * 63L / 2));
}

// --- io --------------------------------------------------------------------

TEST(Io, CsvEscapesSpecialChars) {
  eva::CsvWriter w({"a", "b"});
  w.add_row({std::string("x,y"), std::string("q\"z")});
  std::ostringstream os;
  w.write(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"q\"\"z\"\n");
}

TEST(Io, CsvNumericRows) {
  eva::CsvWriter w({"v"});
  w.add_row(std::vector<double>{1.5});
  std::ostringstream os;
  w.write(os);
  EXPECT_NE(os.str().find("1.5"), std::string::npos);
}

TEST(Io, FmtTrimsZeros) {
  EXPECT_EQ(eva::fmt(1.5000, 4), "1.5");
  EXPECT_EQ(eva::fmt(2.0, 4), "2");
  EXPECT_EQ(eva::fmt(0.12345, 2), "0.12");
}

TEST(Io, ConsoleTablePrints) {
  eva::ConsoleTable t("Title", {"col1", "col2"});
  t.add_row({"a", "b"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("col1"), std::string::npos);
  EXPECT_NE(s.find("| a"), std::string::npos);
}

TEST(Io, AsciiCurveHandlesData) {
  const std::string s = eva::ascii_curve({1, 2, 3, 2, 1}, "curve");
  EXPECT_NE(s.find("curve"), std::string::npos);
  EXPECT_NE(s.find('*'), std::string::npos);
}

TEST(Io, AsciiCurveEmpty) {
  const std::string s = eva::ascii_curve({}, "none");
  EXPECT_NE(s.find("no data"), std::string::npos);
}

}  // namespace
