// Tests for the fault-tolerance runtime: deterministic fault injection,
// atomic writes, hardened parameter loading, EVA2 checkpoints (roundtrip,
// retention, corruption fallback), the divergence sentinel, graceful
// stop + bit-compatible resume across all three trainers, and the SPICE
// DC solve deadline.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/dataset.hpp"
#include "nn/lm_trainer.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "rl/dpo.hpp"
#include "rl/ppo.hpp"
#include "rl/reward_model.hpp"
#include "spice/engine.hpp"
#include "spice/fom.hpp"
#include "spice/sizing.hpp"
#include "tensor/optim.hpp"
#include "tensor/serialize.hpp"
#include "tensor/tensor.hpp"
#include "train/checkpoint.hpp"
#include "train/sentinel.hpp"
#include "train/signal.hpp"
#include "util/crc32.hpp"
#include "util/fault.hpp"
#include "util/io.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using namespace eva;
using namespace eva::tensor;

/// Fresh scratch directory per test, removed on destruction. Also clears
/// any fault spec / stop flag so tests cannot leak into each other.
struct Scratch {
  fs::path dir;
  explicit Scratch(const std::string& name) {
    dir = fs::temp_directory_path() /
          ("eva_train_test_" + name + "_" + std::to_string(::getpid()));
    fs::remove_all(dir);
    fs::create_directories(dir);
    fault::set_spec("");
    train::clear_stop();
  }
  ~Scratch() {
    fault::set_spec("");
    train::clear_stop();
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  [[nodiscard]] std::string path(const std::string& leaf) const {
    return (dir / leaf).string();
  }
};

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------- crc32

TEST(Crc32, MatchesKnownVectors) {
  const char* check = "123456789";
  EXPECT_EQ(crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Chaining two halves must equal one pass.
  const std::uint32_t half = crc32(check, 4);
  EXPECT_EQ(crc32(check + 4, 5, half), 0xCBF43926u);
}

// ------------------------------------------------------- fault injection

TEST(FaultInjection, FiresOnExactOccurrences) {
  fault::set_spec("unit_site:2,unit_site:4");
  EXPECT_TRUE(fault::enabled());
  EXPECT_FALSE(fault::should_fire("unit_site"));  // occurrence 1
  EXPECT_TRUE(fault::should_fire("unit_site"));   // occurrence 2
  EXPECT_FALSE(fault::should_fire("unit_site"));  // occurrence 3
  EXPECT_TRUE(fault::should_fire("unit_site"));   // occurrence 4
  EXPECT_FALSE(fault::should_fire("unit_site"));  // occurrence 5
  EXPECT_EQ(fault::occurrences("unit_site"), 5u);
  // Sites without a rule never fire.
  EXPECT_FALSE(fault::should_fire("other_site"));
  fault::set_spec("");
  EXPECT_FALSE(fault::enabled());
}

TEST(FaultInjection, StarFiresEveryTime) {
  fault::set_spec("unit_star:*");
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(fault::should_fire("unit_star"));
  fault::set_spec("");
}

// ---------------------------------------------------------- atomic write

TEST(AtomicWrite, WritesAndReplaces) {
  Scratch sc("atomic");
  const std::string path = sc.path("out.txt");
  ASSERT_TRUE(atomic_write_file(path, "first"));
  EXPECT_EQ(slurp(path), "first");
  ASSERT_TRUE(atomic_write_file(path, "second"));
  EXPECT_EQ(slurp(path), "second");
}

TEST(AtomicWrite, InjectedFailureLeavesDestinationUntouched) {
  Scratch sc("atomic_fail");
  const std::string path = sc.path("out.txt");
  ASSERT_TRUE(atomic_write_file(path, "good"));
  fault::set_spec("io_write:1");
  EXPECT_FALSE(atomic_write_file(path, "bad"));
  fault::set_spec("");
  EXPECT_EQ(slurp(path), "good");
  // The failed attempt must not leave temp files behind.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(sc.dir)) {
    (void)e;
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
}

// -------------------------------------------------- hardened load_params

std::vector<Tensor> make_test_params(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor> out;
  out.push_back(Tensor::randn({3, 4}, rng, 1.0f, true));
  out.push_back(Tensor::randn({5}, rng, 1.0f, true));
  return out;
}

void expect_load_error(const std::string& path, std::vector<Tensor>& params,
                       const std::string& needle) {
  try {
    load_params(params, path);
    FAIL() << "load_params did not throw for " << needle;
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(LoadParams, RoundtripAndRejectsCorruption) {
  Scratch sc("serialize");
  const std::string path = sc.path("params.eva1");
  auto params = make_test_params(31);
  save_params(params, path);

  // Clean roundtrip first.
  auto loaded = make_test_params(32);
  load_params(loaded, path);
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto a = params[i].data();
    auto b = loaded[i].data();
    for (std::size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }

  const std::string bytes = slurp(path);

  // Header truncated.
  ASSERT_TRUE(atomic_write_file(path, bytes.substr(0, 4)));
  expect_load_error(path, loaded, "header truncated");
  // Bad magic.
  {
    std::string bad = bytes;
    bad[0] = 'X';
    ASSERT_TRUE(atomic_write_file(path, bad));
    expect_load_error(path, loaded, "bad checkpoint magic");
  }
  // Implausible tensor count.
  {
    std::string bad = bytes;
    bad[4] = bad[5] = bad[6] = bad[7] = '\xFF';
    ASSERT_TRUE(atomic_write_file(path, bad));
    expect_load_error(path, loaded, "implausible tensor count");
  }
  // Truncated mid-shape and mid-payload.
  ASSERT_TRUE(atomic_write_file(path, bytes.substr(0, 14)));
  expect_load_error(path, loaded, "truncated in tensor shape");
  ASSERT_TRUE(atomic_write_file(path, bytes.substr(0, bytes.size() - 3)));
  expect_load_error(path, loaded, "payload truncated");
  // Trailing garbage.
  ASSERT_TRUE(atomic_write_file(path, bytes + "zz"));
  expect_load_error(path, loaded, "trailing garbage");
  // Count mismatch against the model.
  ASSERT_TRUE(atomic_write_file(path, bytes));
  std::vector<Tensor> fewer;
  fewer.push_back(make_test_params(33)[0]);
  expect_load_error(path, fewer, "parameter count mismatch");
}

// ------------------------------------------------------ EVA2 checkpoints

struct TinyTrainSetup {
  std::vector<Tensor> params;
  AdamW opt;
  Rng rng;

  explicit TinyTrainSetup(std::uint64_t seed)
      : params(make_test_params(seed)), opt(params, {.lr = 1e-2f}),
        rng(seed) {}

  /// One fake optimization step so the AdamW moments are non-trivial.
  void fake_step() {
    for (auto& p : params) {
      auto g = p.grad();  // allocated zero-filled on first access
      for (std::size_t i = 0; i < g.size(); ++i) {
        g[i] = static_cast<float>(rng.normal());
      }
    }
    opt.step();
  }

  [[nodiscard]] train::TrainState state(long step) {
    train::TrainState ts;
    ts.params = params;
    ts.opt = &opt;
    ts.rng = &rng;
    ts.step = step;
    return ts;
  }
};

TEST(Checkpoint, RoundtripIsBitIdentical) {
  Scratch sc("ckpt_roundtrip");
  TinyTrainSetup a(50);
  a.fake_step();
  a.rng.uniform();  // advance the stream past a Box-Muller cache point

  train::CheckpointManager mgr({sc.dir.string(), 3, 0xABCDu});
  auto ts = a.state(7);
  mgr.save(ts);

  // Restore into an independently-initialized setup.
  TinyTrainSetup b(51);
  auto ts_b = b.state(0);
  auto restored = mgr.load_latest(ts_b);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, 7);
  EXPECT_EQ(ts_b.step, 7);
  for (std::size_t i = 0; i < a.params.size(); ++i) {
    auto pa = a.params[i].data();
    auto pb = b.params[i].data();
    for (std::size_t j = 0; j < pa.size(); ++j) EXPECT_EQ(pa[j], pb[j]);
  }
  const auto oa = a.opt.export_state();
  const auto ob = b.opt.export_state();
  EXPECT_EQ(oa.t, ob.t);
  ASSERT_EQ(oa.m.size(), ob.m.size());
  for (std::size_t i = 0; i < oa.m.size(); ++i) {
    EXPECT_EQ(oa.m[i], ob.m[i]);
    EXPECT_EQ(oa.v[i], ob.v[i]);
  }
  // The RNG streams must continue identically (including the cached
  // Box-Muller half-sample).
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.rng.normal(), b.rng.normal());
    EXPECT_EQ(a.rng.index(1000), b.rng.index(1000));
  }
}

TEST(Checkpoint, RetentionKeepsNewest) {
  Scratch sc("ckpt_retention");
  TinyTrainSetup a(52);
  train::CheckpointManager mgr({sc.dir.string(), 2, 0});
  for (long step = 1; step <= 5; ++step) {
    auto ts = a.state(step);
    mgr.save(ts);
  }
  const auto snaps = mgr.list_snapshots();
  ASSERT_EQ(snaps.size(), 2u);
  TinyTrainSetup b(53);
  auto ts_b = b.state(0);
  EXPECT_EQ(mgr.load_latest(ts_b).value_or(-1), 5);
}

TEST(Checkpoint, BitflippedLatestFallsBackToPreviousSnapshot) {
  Scratch sc("ckpt_fallback");
  TinyTrainSetup a(54);
  train::CheckpointManager mgr({sc.dir.string(), 3, 0});
  auto ts1 = a.state(1);
  mgr.save(ts1);

  a.fake_step();
  fault::set_spec("ckpt_bitflip:1");
  auto ts2 = a.state(2);
  mgr.save(ts2);  // snapshot 2 is written corrupted
  fault::set_spec("");

  TinyTrainSetup b(55);
  auto ts_b = b.state(0);
  const auto restored = mgr.load_latest(ts_b);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, 1) << "corrupt latest must fall back one interval";
}

TEST(Checkpoint, InjectedWriteFailureThrows) {
  Scratch sc("ckpt_write_fail");
  TinyTrainSetup a(56);
  train::CheckpointManager mgr({sc.dir.string(), 3, 0});
  fault::set_spec("ckpt_write:1");
  auto ts = a.state(1);
  EXPECT_THROW(mgr.save(ts), ConfigError);
  fault::set_spec("");
  // The failure must not have produced a snapshot.
  EXPECT_TRUE(mgr.list_snapshots().empty());
}

TEST(Checkpoint, FingerprintMismatchIsRejected) {
  Scratch sc("ckpt_fp");
  TinyTrainSetup a(57);
  train::CheckpointManager writer({sc.dir.string(), 3, 111});
  auto ts = a.state(3);
  writer.save(ts);

  TinyTrainSetup b(58);
  auto ts_b = b.state(0);
  train::CheckpointManager reader({sc.dir.string(), 3, 222});
  EXPECT_FALSE(reader.load_latest(ts_b).has_value());
  // Same fingerprint loads fine.
  train::CheckpointManager reader2({sc.dir.string(), 3, 111});
  EXPECT_EQ(reader2.load_latest(ts_b).value_or(-1), 3);
}

TEST(Checkpoint, GarbageFileIsSkipped) {
  Scratch sc("ckpt_garbage");
  TinyTrainSetup a(59);
  train::CheckpointManager mgr({sc.dir.string(), 3, 0});
  auto ts = a.state(4);
  mgr.save(ts);
  // A later-looking snapshot full of garbage must be skipped over.
  ASSERT_TRUE(atomic_write_file(sc.path("ckpt_0000000009.eva2"),
                                "this is not a checkpoint"));
  ASSERT_TRUE(atomic_write_file(sc.path("latest"),
                                "ckpt_0000000009.eva2\n"));
  TinyTrainSetup b(60);
  auto ts_b = b.state(0);
  EXPECT_EQ(mgr.load_latest(ts_b).value_or(-1), 4);
}

// --------------------------------------------------- divergence sentinel

TEST(Sentinel, TripsOnNonFiniteAndEscalatesToRollback) {
  train::SentinelConfig cfg;
  cfg.rollback_after = 2;
  cfg.warmup_steps = 0;
  train::DivergenceSentinel s(cfg);
  EXPECT_EQ(s.observe(1.0, 1.0), train::SentinelAction::kProceed);
  const double nan = std::nan("");
  EXPECT_EQ(s.observe(nan, 1.0), train::SentinelAction::kSkip);
  EXPECT_LT(s.lr_scale(), 1.0f);
  EXPECT_EQ(s.observe(1.0, nan), train::SentinelAction::kRollback);
  s.notify_rollback();
  // Healthy steps recover the LR scale back toward 1.
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(s.observe(1.0, 1.0), train::SentinelAction::kProceed);
  }
  EXPECT_FLOAT_EQ(s.lr_scale(), 1.0f);
}

TEST(Sentinel, TripsOnLossSpike) {
  train::SentinelConfig cfg;
  cfg.warmup_steps = 3;
  cfg.spike_factor = 10.0;
  train::DivergenceSentinel s(cfg);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(s.observe(1.0, 1.0), train::SentinelAction::kProceed);
  }
  EXPECT_EQ(s.observe(100.0, 1.0), train::SentinelAction::kSkip);
  // A plausible loss right after counts as healthy again.
  EXPECT_EQ(s.observe(1.1, 1.0), train::SentinelAction::kProceed);
}

TEST(Sentinel, DisabledNeverTrips) {
  train::SentinelConfig cfg;
  cfg.enabled = false;
  train::DivergenceSentinel s(cfg);
  EXPECT_EQ(s.observe(std::nan(""), 1.0), train::SentinelAction::kProceed);
}

// ------------------------------------------------ pretraining resilience

struct PretrainFixture {
  data::Dataset ds;
  nn::Tokenizer tok;
  nn::SequenceCorpus corpus;

  static PretrainFixture make(std::uint64_t seed) {
    data::DatasetConfig dcfg;
    dcfg.per_type = 3;
    dcfg.seed = seed;
    dcfg.require_simulatable = false;
    auto ds = data::Dataset::build(dcfg);
    auto tok = nn::Tokenizer::from_dataset(ds);
    Rng rng(seed + 1);
    auto corpus = nn::build_corpus(ds, tok, 2, 256, rng);
    return PretrainFixture{std::move(ds), std::move(tok), std::move(corpus)};
  }

  [[nodiscard]] nn::TransformerLM fresh_model(std::uint64_t seed) const {
    Rng rng(seed);
    return nn::TransformerLM(nn::ModelConfig::tiny(tok.vocab_size()), rng);
  }
};

nn::PretrainConfig small_pretrain_cfg() {
  nn::PretrainConfig cfg;
  cfg.steps = 24;
  cfg.batch = 2;
  cfg.warmup = 4;
  cfg.log_every = 1;  // on_step fires every step (the kill hook needs it)
  cfg.checkpoint_every = 8;
  return cfg;
}

TEST(PretrainResilience, KillAndResumeMatchesUninterruptedRun) {
  Scratch sc("pretrain_resume");
  const auto fx = PretrainFixture::make(700);
  const auto cfg = small_pretrain_cfg();

  // Reference: one uninterrupted run.
  auto model_a = fx.fresh_model(7);
  const auto a = nn::pretrain(model_a, fx.corpus, cfg);
  ASSERT_EQ(a.losses.size(), 24u);
  EXPECT_FALSE(a.interrupted);

  // Killed run: stop mid-flight (like SIGTERM), final snapshot written.
  auto cfg_b = cfg;
  cfg_b.checkpoint_dir = sc.dir.string();
  auto model_b = fx.fresh_model(7);
  const auto b = nn::pretrain(model_b, fx.corpus, cfg_b,
                              [](int step, double) {
                                if (step == 11) train::request_stop();
                              });
  EXPECT_TRUE(b.interrupted);
  ASSERT_EQ(b.losses.size(), 12u);
  train::clear_stop();

  // Resumed run: fresh process state, weights come from the snapshot.
  auto cfg_c = cfg_b;
  cfg_c.resume = true;
  auto model_c = fx.fresh_model(8);  // init is irrelevant, gets overwritten
  const auto c = nn::pretrain(model_c, fx.corpus, cfg_c);
  EXPECT_EQ(c.start_step, 12);
  ASSERT_EQ(c.losses.size(), 12u);
  EXPECT_FALSE(c.interrupted);

  // Step-for-step equivalence: kill+resume must replay the exact same
  // trajectory as the uninterrupted run.
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_DOUBLE_EQ(b.losses[i], a.losses[i]) << "step " << i;
    EXPECT_DOUBLE_EQ(c.losses[i], a.losses[i + 12]) << "step " << (i + 12);
  }
  EXPECT_DOUBLE_EQ(c.final_val_loss, a.final_val_loss);
}

TEST(PretrainResilience, SentinelRecoversFromInjectedNanGradients) {
  Scratch sc("pretrain_nan");
  const auto fx = PretrainFixture::make(701);
  auto cfg = small_pretrain_cfg();
  cfg.steps = 20;
  cfg.sentinel.rollback_after = 2;
  cfg.sentinel.warmup_steps = 2;

  // Two consecutive poisoned steps: first trips (skip), second escalates
  // to a rollback onto the in-memory last-good snapshot.
  fault::set_spec("nan_grad:5,nan_grad:6");
  auto model = fx.fresh_model(9);
  const auto r = nn::pretrain(model, fx.corpus, cfg);
  const auto injections = fault::occurrences("nan_grad");
  fault::set_spec("");

  EXPECT_FALSE(r.interrupted);
  // After the rollback the run replays the rewound steps, so the full
  // step budget completes with finite losses.
  ASSERT_EQ(r.losses.size(), 20u);
  for (double l : r.losses) EXPECT_TRUE(std::isfinite(l)) << l;
  EXPECT_TRUE(std::isfinite(r.final_val_loss));
  // Both injected faults were consumed.
  EXPECT_GE(injections, 6u);
}

// ------------------------------------------------------ PPO / DPO resume

struct RlFixture {
  data::Dataset ds;
  nn::Tokenizer tok;

  static RlFixture make(std::uint64_t seed) {
    data::DatasetConfig cfg;
    cfg.per_type = 5;
    cfg.seed = seed;
    cfg.require_simulatable = false;
    auto ds = data::Dataset::build(cfg);
    auto tok = nn::Tokenizer::from_dataset(ds);
    return RlFixture{std::move(ds), std::move(tok)};
  }

  [[nodiscard]] nn::TransformerLM fresh_model(std::uint64_t seed) const {
    Rng rng(seed);
    return nn::TransformerLM(nn::ModelConfig::tiny(tok.vocab_size()), rng);
  }
};

TEST(PpoResilience, KillAndResumeMatchesUninterruptedRun) {
  Scratch sc("ppo_resume");
  const auto fx = RlFixture::make(800);

  rl::PpoConfig cfg;
  cfg.epochs = 4;
  cfg.rollouts = 4;
  cfg.ppo_epochs = 1;
  cfg.minibatch = 2;
  cfg.max_len = 48;
  cfg.batch_width = 2;
  cfg.checkpoint_every = 1;

  auto run = [&](const rl::PpoConfig& c, std::uint64_t mseed,
                 const std::function<void(int, double)>& hook) {
    // The reward model is a fixed artifact across kill/resume — build it
    // from the same seed every run, independent of the policy instance.
    auto rm_model = fx.fresh_model(21);
    Rng rm_rng(11);
    rl::RewardModel rm(rm_model, fx.tok, rm_rng);
    auto model = fx.fresh_model(mseed);
    Rng ppo_rng(12);
    rl::PpoTrainer trainer(model, fx.tok, rm, c, ppo_rng);
    return trainer.train(hook);
  };

  const auto a = run(cfg, 21, nullptr);
  ASSERT_EQ(a.mean_reward.size(), 4u);

  auto cfg_b = cfg;
  cfg_b.checkpoint_dir = sc.dir.string();
  const auto b = run(cfg_b, 21, [](int epoch, double) {
    if (epoch == 1) train::request_stop();
  });
  EXPECT_TRUE(b.interrupted);
  ASSERT_EQ(b.mean_reward.size(), 2u);
  train::clear_stop();

  auto cfg_c = cfg_b;
  cfg_c.resume = true;
  const auto c = run(cfg_c, 22, nullptr);  // different init: snapshot wins
  EXPECT_EQ(c.start_epoch, 2);
  ASSERT_EQ(c.mean_reward.size(), 2u);

  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(b.mean_reward[i], a.mean_reward[i]) << "epoch " << i;
    EXPECT_DOUBLE_EQ(c.mean_reward[i], a.mean_reward[i + 2])
        << "epoch " << (i + 2);
  }
  ASSERT_EQ(b.total_loss.size() + c.total_loss.size(), a.total_loss.size());
  for (std::size_t i = 0; i < b.total_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.total_loss[i], a.total_loss[i]);
  }
  for (std::size_t i = 0; i < c.total_loss.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.total_loss[i],
                     a.total_loss[b.total_loss.size() + i]);
  }
}

TEST(DpoResilience, KillAndResumeMatchesUninterruptedRun) {
  Scratch sc("dpo_resume");
  const auto fx = RlFixture::make(801);
  rl::LabelingConfig lcfg;
  lcfg.target = circuit::CircuitType::OpAmp;
  const auto labels = rl::label_dataset(fx.ds, fx.tok, lcfg);
  Rng prng(13);
  const auto pairs = rl::build_preference_pairs(labels.examples, 3, prng);

  rl::DpoConfig cfg;
  cfg.steps = 12;
  cfg.pairs_per_step = 2;
  cfg.checkpoint_every = 4;

  auto run = [&](const rl::DpoConfig& c, std::uint64_t mseed,
                 const std::function<void(int, double)>& hook) {
    auto model = fx.fresh_model(mseed);
    rl::DpoTrainer trainer(model, fx.tok, c);
    return trainer.train(pairs, hook);
  };

  const auto a = run(cfg, 31, nullptr);
  ASSERT_EQ(a.loss.size(), 12u);

  auto cfg_b = cfg;
  cfg_b.checkpoint_dir = sc.dir.string();
  const auto b = run(cfg_b, 31, [](int step, double) {
    if (step == 5) train::request_stop();
  });
  EXPECT_TRUE(b.interrupted);
  ASSERT_EQ(b.loss.size(), 6u);
  train::clear_stop();

  auto cfg_c = cfg_b;
  cfg_c.resume = true;
  const auto c = run(cfg_c, 32, nullptr);
  EXPECT_EQ(c.start_step, 6);
  ASSERT_EQ(c.loss.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_DOUBLE_EQ(b.loss[i], a.loss[i]) << "step " << i;
    EXPECT_DOUBLE_EQ(c.loss[i], a.loss[i + 6]) << "step " << (i + 6);
  }
}

// ------------------------------------------------- SPICE solve deadlines

const circuit::Netlist* find_valid_netlist(const data::Dataset& ds) {
  for (const auto& e : ds.entries()) {
    if (circuit::structurally_valid(e.netlist)) return &e.netlist;
  }
  return nullptr;
}

TEST(SpiceDeadline, AttemptCapMarksDeadlineExceeded) {
  const auto fx = RlFixture::make(802);
  const auto* nl = find_valid_netlist(fx.ds);
  ASSERT_NE(nl, nullptr);
  spice::SimOptions opts;
  opts.max_dc_attempts = 0;  // every attempt is over budget
  spice::Simulator sim(*nl, spice::default_sizing(*nl), opts);
  EXPECT_FALSE(sim.solve_dc());
  EXPECT_TRUE(sim.dc_result().deadline_exceeded);
  EXPECT_FALSE(sim.dc_result().converged);
}

TEST(SpiceDeadline, ExpiredWallClockAbortsNewton) {
  const auto fx = RlFixture::make(803);
  const auto* nl = find_valid_netlist(fx.ds);
  ASSERT_NE(nl, nullptr);
  spice::SimOptions opts;
  opts.dc_deadline_ms = 1e-7;  // already expired at the first iteration
  spice::Simulator sim(*nl, spice::default_sizing(*nl), opts);
  EXPECT_FALSE(sim.solve_dc());
  EXPECT_TRUE(sim.dc_result().deadline_exceeded);
  EXPECT_EQ(sim.dc_result().iterations, 0);
}

TEST(SpiceDeadline, InjectedDcFaultFailsSolve) {
  const auto fx = RlFixture::make(804);
  const auto* nl = find_valid_netlist(fx.ds);
  ASSERT_NE(nl, nullptr);
  spice::SimOptions opts;
  spice::Simulator sim(*nl, spice::default_sizing(*nl), opts);
  fault::set_spec("spice_dc:1");
  EXPECT_FALSE(sim.solve_dc());
  fault::set_spec("");
  EXPECT_EQ(sim.dc_result().iterations, 0);
  // Without the fault the same solve proceeds normally.
  (void)sim.solve_dc();
  EXPECT_GT(sim.dc_result().iterations, 0);
}

// ------------------------------------------- non-finite FoM/reward guard

TEST(NonFiniteGuards, FomNanMapsToFailedEvaluation) {
  const auto fx = RlFixture::make(805);
  const data::TopologyEntry* good = nullptr;
  for (const auto& e : fx.ds.entries()) {
    const auto perf = spice::evaluate_default(e.netlist, e.type);
    if (perf.ok) {
      good = &e;
      break;
    }
  }
  if (good == nullptr) GTEST_SKIP() << "no evaluable topology in fixture";
  fault::set_spec("fom_nan:1");
  const auto perf = spice::evaluate_default(good->netlist, good->type);
  fault::set_spec("");
  EXPECT_FALSE(perf.ok) << "NaN FoM must grade as a failed evaluation";
  EXPECT_EQ(perf.fom, 0.0);
}

TEST(NonFiniteGuards, RewardNanMapsToInvalidCircuit) {
  const auto fx = RlFixture::make(806);
  const circuit::Netlist* sim_nl = nullptr;
  for (const auto& e : fx.ds.entries()) {
    if (spice::simulatable(e.netlist)) {
      sim_nl = &e.netlist;
      break;
    }
  }
  if (sim_nl == nullptr) GTEST_SKIP() << "no simulatable topology in fixture";

  auto model = fx.fresh_model(41);
  Rng rng(42);
  rl::RewardModel rm(model, fx.tok, rng);
  Rng trng(43);
  auto ids = fx.tok.encode_tour(circuit::encode_tour(*sim_nl, trng));
  ids.pop_back();  // reward() takes the raw tour without EOS

  const double clean = rm.reward(ids);
  EXPECT_TRUE(std::isfinite(clean));
  EXPECT_GT(clean, rl::rank_reward(rl::RankClass::Invalid));

  fault::set_spec("reward_nan:1");
  const double poisoned = rm.reward(ids);
  fault::set_spec("");
  EXPECT_DOUBLE_EQ(poisoned, rl::rank_reward(rl::RankClass::Invalid));
}

}  // namespace
