// Tests for the GA sizer and the paper-metric evaluation harness.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/canon.hpp"
#include "data/builder.hpp"
#include "data/dataset.hpp"
#include "data/generators.hpp"
#include "eval/metrics.hpp"
#include "opt/ga.hpp"
#include "spice/fom.hpp"

namespace {

using namespace eva;
using circuit::CircuitType;
using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;

// --- GA --------------------------------------------------------------------

TEST(Ga, MaximizesSphere) {
  // f(x) = -sum (x - 0.7)^2, optimum at 0.7^dim.
  auto fitness = [](const std::vector<double>& x) {
    double s = 0;
    for (double v : x) s -= (v - 0.7) * (v - 0.7);
    return s;
  };
  opt::GaConfig cfg;
  cfg.population = 30;
  cfg.generations = 25;
  const auto res = opt::ga_optimize(4, fitness, cfg);
  EXPECT_GT(res.best_fitness, -0.01);
  for (double g : res.best) EXPECT_NEAR(g, 0.7, 0.15);
}

TEST(Ga, ElitismMakesBestMonotone) {
  auto fitness = [](const std::vector<double>& x) { return x[0]; };
  opt::GaConfig cfg;
  cfg.generations = 10;
  const auto res = opt::ga_optimize(2, fitness, cfg);
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_GE(res.history[i], res.history[i - 1] - 1e-12);
  }
}

TEST(Ga, DeterministicForSeed) {
  auto fitness = [](const std::vector<double>& x) {
    return -std::abs(x[0] - 0.3) - std::abs(x[1] - 0.9);
  };
  opt::GaConfig cfg;
  cfg.seed = 5150;
  const auto a = opt::ga_optimize(2, fitness, cfg);
  const auto b = opt::ga_optimize(2, fitness, cfg);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_fitness, b.best_fitness);
}

Netlist five_t_ota() {
  data::NetBuilder b;
  b.rails();
  b.io("inp", IoPin::Vin1);
  b.io("inn", IoPin::Vin2);
  b.io("bt", IoPin::Vb1);
  b.mos(DeviceKind::Nmos, "inp", "d1", "tail");
  b.mos(DeviceKind::Nmos, "inn", "out", "tail");
  b.mos(DeviceKind::Nmos, "bt", "tail", "VSS");
  b.mos(DeviceKind::Pmos, "d1", "d1", "VDD");
  b.mos(DeviceKind::Pmos, "d1", "out", "VDD");
  b.io("out", IoPin::Vout1);
  return b.take();
}

TEST(Ga, SizingImprovesOpAmpFom) {
  const Netlist nl = five_t_ota();
  const auto def = spice::evaluate_default(nl, CircuitType::OpAmp);
  ASSERT_TRUE(def.ok);
  opt::GaConfig cfg;
  cfg.population = 16;
  cfg.generations = 8;
  const auto sized = opt::size_topology(nl, CircuitType::OpAmp, cfg);
  ASSERT_TRUE(sized.ok);
  EXPECT_GE(sized.perf.fom, def.fom) << "GA must not lose to default sizing";
  EXPECT_GT(sized.perf.fom, 0.0);
}

TEST(Ga, SizeTopologyEmptyNetlist) {
  Netlist empty;
  const auto res = opt::size_topology(empty, CircuitType::OpAmp, {});
  EXPECT_FALSE(res.ok);
}

// --- MMD ----------------------------------------------------------------------

TEST(Mmd, IdenticalSetsNearZero) {
  std::vector<std::vector<double>> x{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_NEAR(eval::mmd_gaussian(x, x, 1.0), 0.0, 1e-9);
}

TEST(Mmd, SeparatedSetsPositive) {
  std::vector<std::vector<double>> x{{0, 0}, {0.1, 0.1}, {0, 0.1}};
  std::vector<std::vector<double>> y{{5, 5}, {5.1, 5}, {5, 5.1}};
  EXPECT_GT(eval::mmd_gaussian(x, y, 1.0), 0.5);
}

TEST(Mmd, SymmetricInArguments) {
  std::vector<std::vector<double>> x{{0, 1}, {1, 0}};
  std::vector<std::vector<double>> y{{2, 2}, {3, 3}};
  EXPECT_NEAR(eval::mmd_gaussian(x, y, 2.0), eval::mmd_gaussian(y, x, 2.0),
              1e-12);
}

TEST(Mmd, MedianHeuristicFinite) {
  std::vector<std::vector<double>> x{{0, 0}, {1, 1}};
  std::vector<std::vector<double>> y{{0.5, 0.5}, {2, 2}};
  const double m = eval::mmd_gaussian(x, y);  // sigma from data
  EXPECT_TRUE(std::isfinite(m));
  EXPECT_GE(m, 0.0);
}

// --- evaluate_generation ----------------------------------------------------

data::Dataset small_ds(std::uint64_t seed) {
  data::DatasetConfig cfg;
  cfg.per_type = 4;
  cfg.seed = seed;
  cfg.require_simulatable = false;
  return data::Dataset::build(cfg);
}

TEST(GenerationEval, DatasetEntriesAreValidNotNovel) {
  const auto ds = small_ds(500);
  std::vector<eval::Attempt> attempts;
  for (int i = 0; i < 10; ++i) {
    attempts.emplace_back(ds.entries()[static_cast<std::size_t>(i)].netlist);
  }
  const auto ev = eval::evaluate_generation(attempts, ds);
  EXPECT_EQ(ev.total, 10);
  EXPECT_GT(ev.valid, 5);  // dataset entries are structurally valid
  EXPECT_EQ(ev.novel, 0);  // all hashes are in the dataset
  EXPECT_GE(ev.versatility, 2);
  EXPECT_LT(ev.mmd, 0.5);  // same distribution
}

TEST(GenerationEval, NulloptsCountAsInvalid) {
  const auto ds = small_ds(501);
  std::vector<eval::Attempt> attempts(5, std::nullopt);
  const auto ev = eval::evaluate_generation(attempts, ds);
  EXPECT_EQ(ev.total, 5);
  EXPECT_EQ(ev.valid, 0);
  EXPECT_DOUBLE_EQ(ev.validity_pct, 0.0);
}

TEST(GenerationEval, FreshTopologiesAreNovel) {
  const auto ds = small_ds(502);
  // Generate with a different seed stream: most will not hash-match.
  Rng rng(987654);
  std::vector<eval::Attempt> attempts;
  for (int i = 0; i < 8; ++i) attempts.emplace_back(data::gen_opamp(rng));
  const auto ev = eval::evaluate_generation(attempts, ds);
  if (ev.valid > 0) {
    EXPECT_GT(ev.novelty_pct, 50.0);
  }
}

// --- fom_at_k -------------------------------------------------------------------

TEST(FomAtK, FixedOpAmpGeneratorScoresPositive) {
  const Netlist ota = five_t_ota();
  opt::GaConfig ga;
  ga.population = 10;
  ga.generations = 4;
  const auto res = eval::fom_at_k([&]() { return eval::Attempt{ota}; }, 3,
                                  CircuitType::OpAmp, ga);
  EXPECT_EQ(res.attempts, 3);
  EXPECT_EQ(res.valid, 3);
  EXPECT_EQ(res.relevant, 3);
  EXPECT_GT(res.best_fom, 0.0);
  EXPECT_EQ(res.foms.size(), 3u);
}

TEST(FomAtK, AllInvalidGivesZero) {
  opt::GaConfig ga;
  const auto res = eval::fom_at_k([]() { return eval::Attempt{}; }, 4,
                                  CircuitType::OpAmp, ga);
  EXPECT_EQ(res.valid, 0);
  EXPECT_DOUBLE_EQ(res.best_fom, 0.0);
}

}  // namespace
