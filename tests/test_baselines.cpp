// Tests for the Table II baseline reimplementations: each must exhibit the
// design-space restriction that defines it.
#include <gtest/gtest.h>

#include <set>

#include "baselines/baselines.hpp"
#include "circuit/canon.hpp"
#include "circuit/classify.hpp"
#include "circuit/validity.hpp"
#include "data/dataset.hpp"

namespace {

using namespace eva;
using baselines::TopologyGenerator;
using circuit::CircuitType;

const data::Dataset& shared_ds() {
  static const data::Dataset ds = [] {
    data::DatasetConfig cfg;
    cfg.per_type = 6;
    cfg.seed = 600;
    cfg.require_simulatable = false;
    return data::Dataset::build(cfg);
  }();
  return ds;
}

using Factory = std::unique_ptr<TopologyGenerator> (*)(const data::Dataset&);

class AllBaselines : public ::testing::TestWithParam<Factory> {};

TEST_P(AllBaselines, ProducesSomeValidCircuits) {
  auto gen = GetParam()(shared_ds());
  Rng rng(1);
  int valid = 0;
  for (int i = 0; i < 40; ++i) {
    const auto nl = gen->generate(rng);
    if (nl && circuit::structurally_valid(*nl)) ++valid;
  }
  EXPECT_GT(valid, 10) << gen->name();
  EXPECT_FALSE(gen->name().empty());
}

TEST_P(AllBaselines, ProducesSomeInvalidCircuits) {
  // Every baseline has a real error model: validity is not 100%.
  auto gen = GetParam()(shared_ds());
  Rng rng(2);
  int invalid = 0;
  for (int i = 0; i < 60; ++i) {
    const auto nl = gen->generate(rng);
    if (!nl || !circuit::structurally_valid(*nl)) ++invalid;
  }
  EXPECT_GT(invalid, 0) << gen->name();
}

INSTANTIATE_TEST_SUITE_P(Factories, AllBaselines,
                         ::testing::Values(&baselines::make_analogcoder_like,
                                           &baselines::make_artisan_like,
                                           &baselines::make_cktgnn_like,
                                           &baselines::make_lamagic_like));

TEST(AnalogCoderLike, ReusesLibraryOnly) {
  auto gen = baselines::make_analogcoder_like(shared_ds());
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const auto nl = gen->generate(rng);
    if (!nl || !circuit::structurally_valid(*nl)) continue;
    // Every valid emission is a known dataset topology: zero novelty.
    EXPECT_TRUE(shared_ds().contains_hash(circuit::canonical_hash(*nl)));
  }
  EXPECT_TRUE(gen->supports(CircuitType::OpAmp));
  EXPECT_FALSE(gen->supports(CircuitType::PowerConverter));
  EXPECT_EQ(gen->labeled_required(CircuitType::PowerConverter), -1);
  EXPECT_GT(gen->labeled_required(CircuitType::OpAmp), 0);
  EXPECT_LE(gen->labeled_required(CircuitType::OpAmp), 3);
}

TEST(ArtisanLike, OpAmpSpecialist) {
  auto gen = baselines::make_artisan_like(shared_ds());
  Rng rng(4);
  int valid = 0;
  for (int i = 0; i < 40; ++i) {
    const auto nl = gen->generate(rng);
    if (!nl || !circuit::structurally_valid(*nl)) continue;
    ++valid;
    EXPECT_EQ(circuit::classify(*nl), CircuitType::OpAmp);
    EXPECT_TRUE(shared_ds().contains_hash(circuit::canonical_hash(*nl)));
  }
  EXPECT_GT(valid, 20);
  EXPECT_FALSE(gen->supports(CircuitType::Lna));
  // Trained on every labeled Op-Amp in the corpus.
  EXPECT_EQ(gen->labeled_required(CircuitType::OpAmp),
            static_cast<int>(shared_ds().of_type(CircuitType::OpAmp).size()));
}

TEST(CktGnnLike, GeneratesNovelOpAmps) {
  auto gen = baselines::make_cktgnn_like(shared_ds());
  Rng rng(5);
  int valid = 0;
  int novel = 0;
  std::set<std::uint64_t> distinct;
  for (int i = 0; i < 60; ++i) {
    const auto nl = gen->generate(rng);
    if (!nl || !circuit::structurally_valid(*nl)) continue;
    ++valid;
    const auto h = circuit::canonical_hash(*nl);
    distinct.insert(h);
    if (!shared_ds().contains_hash(h)) ++novel;
  }
  ASSERT_GT(valid, 10);
  // Sub-block composition explores outside the dataset.
  EXPECT_GT(static_cast<double>(novel) / valid, 0.5);
  EXPECT_GT(distinct.size(), 5u);
}

TEST(LaMagicLike, TinyDesignSpace) {
  auto gen = baselines::make_lamagic_like(shared_ds());
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    const auto nl = gen->generate(rng);
    if (!nl) continue;
    // The defining restriction: at most ~5 devices on fixed nodes.
    EXPECT_LE(nl->num_devices(), 6);
  }
  EXPECT_TRUE(gen->supports(CircuitType::PowerConverter));
  EXPECT_FALSE(gen->supports(CircuitType::OpAmp));
  EXPECT_EQ(gen->labeled_required(CircuitType::OpAmp), -1);
}

}  // namespace
