// Tests for the neural stack: tokenizer, transformer (training and
// KV-cache inference paths must agree), sampler, LM pretraining.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/canon.hpp"
#include "data/generators.hpp"
#include "nn/lm_trainer.hpp"
#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"

namespace {

using namespace eva;
using namespace eva::nn;
using circuit::CircuitType;
using circuit::DeviceKind;
using circuit::IoPin;

Tokenizer small_tokenizer() {
  // Limits: 4 NMOS, 4 PMOS, 2 of everything else.
  return Tokenizer({4, 4, 2, 2, 2, 2, 2, 2});
}

TEST(Tokenizer, SpecialsAndIoLayout) {
  const Tokenizer tok = small_tokenizer();
  EXPECT_EQ(tok.name(Tokenizer::kPad), "Truncate");
  EXPECT_EQ(tok.name(Tokenizer::kEos), "<EOS>");
  EXPECT_EQ(tok.name(tok.encode_io(IoPin::Vss)), "VSS");
  EXPECT_EQ(tok.name(tok.encode_io(IoPin::Iref)), "IREF");
  EXPECT_EQ(tok.start_token(), tok.encode_io(IoPin::Vss));
}

TEST(Tokenizer, VocabSizeMatchesLimits) {
  const Tokenizer tok = small_tokenizer();
  // 2 specials + 11 IO + 4*4 + 4*4 (MOS) + 2*3 + 2*3 (BJT) + 4 * (2*2) 2-pin.
  EXPECT_EQ(tok.vocab_size(), 2 + 11 + 16 + 16 + 6 + 6 + 16);
}

TEST(Tokenizer, EncodeDecodeRoundTripAllTokens) {
  const Tokenizer tok = small_tokenizer();
  for (int id = 2; id < tok.vocab_size(); ++id) {
    const auto t = tok.decode(id);
    EXPECT_EQ(tok.encode(t), id) << tok.name(id);
  }
}

TEST(Tokenizer, PinNamesMatch) {
  const Tokenizer tok = small_tokenizer();
  const auto t = circuit::dev_token(DeviceKind::Nmos, 2, circuit::mos::D);
  EXPECT_EQ(tok.name(tok.encode(t)), "NM2_D");
}

TEST(Tokenizer, RejectsOverLimitDevice) {
  const Tokenizer tok = small_tokenizer();
  const auto t = circuit::dev_token(DeviceKind::Nmos, 9, 0);
  EXPECT_THROW((void)tok.encode(t), Error);
}

TEST(Tokenizer, FromDatasetCoversAllEntries) {
  data::DatasetConfig cfg;
  cfg.per_type = 4;
  cfg.seed = 300;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  const Tokenizer tok = Tokenizer::from_dataset(ds);
  Rng rng(1);
  for (const auto& e : ds.entries()) {
    const auto tour = circuit::encode_tour(e.netlist, rng);
    EXPECT_NO_THROW((void)tok.encode_tour(tour));
  }
}

TEST(Tokenizer, TourRoundTripThroughIds) {
  Rng rng(2);
  const auto nl = data::gen_opamp(rng);
  const Tokenizer tok(
      {20, 20, 4, 4, 10, 10, 6, 6});
  const auto tour = circuit::encode_tour(nl, rng);
  const auto ids = tok.encode_tour(tour);
  EXPECT_EQ(ids.back(), Tokenizer::kEos);
  const auto back = tok.decode_ids(ids);
  ASSERT_EQ(back.size(), tour.size());
  const auto res = circuit::decode_tour(back);
  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_EQ(circuit::canonical_hash(res.netlist), circuit::canonical_hash(nl));
}

// --- transformer ---------------------------------------------------------

TEST(Transformer, ForwardShapes) {
  Rng rng(3);
  TransformerLM model(ModelConfig::tiny(32), rng);
  const std::vector<int> tokens{1, 2, 3, 4, 5, 6};  // B=2, T=3
  const auto logits = model.forward(tokens, 2, 3);
  EXPECT_EQ(logits.shape(), (tensor::Shape{6, 32}));
  const auto hidden = model.forward_hidden(tokens, 2, 3);
  EXPECT_EQ(hidden.shape(), (tensor::Shape{2, 3, 32}));
}

TEST(Transformer, ParamCountReasonable) {
  Rng rng(4);
  TransformerLM model(ModelConfig::tiny(32), rng);
  // tiny: C=32, 1 layer: emb 32*32 + pos 128*32 + block (~12*C^2 + ...) +
  // head 32*32. Just sanity-check the magnitude and parameter list size.
  EXPECT_GT(model.num_params(), 10000u);
  EXPECT_LT(model.num_params(), 100000u);
  EXPECT_EQ(model.parameters().size(), 2u + 16u + 3u);
}

TEST(Transformer, CausalityFutureTokensDontChangePast) {
  Rng rng(5);
  TransformerLM model(ModelConfig::tiny(16), rng);
  const std::vector<int> a{3, 4, 5, 6};
  const std::vector<int> b{3, 4, 9, 9};  // same prefix of 2
  const auto la = model.forward(a, 1, 4, false);
  const auto lb = model.forward(b, 1, 4, false);
  for (int pos = 0; pos < 2; ++pos) {
    for (int v = 0; v < 16; ++v) {
      EXPECT_NEAR(la.data()[static_cast<std::size_t>(pos * 16 + v)],
                  lb.data()[static_cast<std::size_t>(pos * 16 + v)], 1e-5f)
          << "position " << pos << " changed by a future token";
    }
  }
}

TEST(Transformer, KvCacheMatchesTrainingPath) {
  Rng rng(6);
  ModelConfig cfg = ModelConfig::tiny(24);
  cfg.n_layers = 2;  // exercise multi-layer cache
  TransformerLM model(cfg, rng);
  const std::vector<int> tokens{2, 7, 11, 3, 19};
  const int T = static_cast<int>(tokens.size());
  const auto logits = model.forward(tokens, 1, T, false);

  auto cache = model.make_cache();
  std::vector<float> step_logits;
  for (int t = 0; t < T; ++t) {
    model.infer_step(cache, tokens[static_cast<std::size_t>(t)], step_logits);
    for (int v = 0; v < cfg.vocab; ++v) {
      EXPECT_NEAR(step_logits[static_cast<std::size_t>(v)],
                  logits.data()[static_cast<std::size_t>(t * cfg.vocab + v)],
                  2e-3f)
          << "t=" << t << " v=" << v;
    }
  }
}

TEST(Transformer, LoadFromCopiesWeights) {
  Rng r1(7), r2(8);
  TransformerLM a(ModelConfig::tiny(16), r1);
  TransformerLM b(ModelConfig::tiny(16), r2);
  const std::vector<int> tokens{1, 2, 3};
  const auto la = a.forward(tokens, 1, 3, false);
  b.load_from(a);
  const auto lb = b.forward(tokens, 1, 3, false);
  for (std::size_t i = 0; i < la.numel(); ++i) {
    EXPECT_FLOAT_EQ(la.data()[i], lb.data()[i]);
  }
}

TEST(Transformer, GradientsFlowToAllParameters) {
  Rng rng(9);
  TransformerLM model(ModelConfig::tiny(16), rng);
  const std::vector<int> tokens{1, 2, 3, 4};
  auto logits = model.forward(tokens, 1, 4);
  auto loss = tensor::cross_entropy(logits, {2, 3, 4, 5});
  loss.backward();
  int nonzero_params = 0;
  for (auto& p : model.parameters()) {
    bool any = false;
    for (float g : p.grad()) {
      if (g != 0.0f) {
        any = true;
        break;
      }
    }
    nonzero_params += any;
  }
  // pos_emb rows beyond T and unused vocab rows get no grad, but nearly
  // every parameter tensor must receive some gradient.
  EXPECT_GE(nonzero_params, static_cast<int>(model.parameters().size()) - 1);
}

// --- sampler ----------------------------------------------------------------

TEST(Sampler, StartsWithVssAndRespectsMaxLen) {
  Rng rng(10);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  SampleOptions opts;
  opts.max_len = 12;
  Rng srng(11);
  const auto res = sample_sequence(model, tok, srng, opts);
  EXPECT_EQ(res.ids.front(), tok.start_token());
  EXPECT_LE(res.ids.size(), 12u);
  EXPECT_EQ(res.logprobs.size() >= res.ids.size() - 1, true);
  for (float lp : res.logprobs) EXPECT_LE(lp, 0.0f);
}

TEST(Sampler, DeterministicGivenSeed) {
  Rng rng(12);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  Rng s1(77), s2(77);
  const auto a = sample_sequence(model, tok, s1);
  const auto b = sample_sequence(model, tok, s2);
  EXPECT_EQ(a.ids, b.ids);
}

TEST(Sampler, BatchProducesRequestedCount) {
  Rng rng(13);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  Rng srng(14);
  SampleOptions opts;
  opts.max_len = 16;
  const auto batch = sample_batch(model, tok, srng, 7, opts);
  EXPECT_EQ(batch.size(), 7u);
  for (const auto& r : batch) {
    EXPECT_EQ(r.ids.front(), tok.start_token());
  }
}

TEST(Sampler, TopKRestrictsSupport) {
  Rng rng(15);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  SampleOptions opts;
  opts.top_k = 1;  // greedy
  opts.max_len = 10;
  Rng s1(5), s2(99);
  // Greedy sampling is seed-independent.
  const auto a = sample_sequence(model, tok, s1, opts);
  const auto b = sample_sequence(model, tok, s2, opts);
  EXPECT_EQ(a.ids, b.ids);
}

TEST(Sampler, IdsToNetlistRejectsGarbage) {
  const Tokenizer tok = small_tokenizer();
  EXPECT_FALSE(ids_to_netlist(tok, {tok.start_token()}).has_value());
}

TEST(Sampler, IdsToNetlistAcceptsEncodedCircuit) {
  Rng rng(16);
  const auto nl = data::gen_sc_sampler(rng);
  const Tokenizer tok({20, 20, 4, 4, 10, 10, 6, 6});
  const auto ids = tok.encode_tour(circuit::encode_tour(nl, rng));
  std::vector<int> no_eos(ids.begin(), ids.end() - 1);
  const auto back = ids_to_netlist(tok, no_eos);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(circuit::canonical_hash(*back), circuit::canonical_hash(nl));
}

// --- lm trainer ----------------------------------------------------------------

TEST(LmTrainer, MakeBatchPadsAndShifts) {
  const std::vector<int> s1{10, 11, 12, 1};
  const std::vector<int> s2{10, 13, 1};
  const auto b = make_batch({&s1, &s2}, 64);
  EXPECT_EQ(b.batch, 2);
  EXPECT_EQ(b.seq_len, 3);
  // Row 0: inputs 10,11,12 -> targets 11,12,1.
  EXPECT_EQ(b.inputs[0], 10);
  EXPECT_EQ(b.targets[2], 1);
  // Row 1 padded: last input is pad, last target ignored.
  EXPECT_EQ(b.inputs[5], Tokenizer::kPad);
  EXPECT_EQ(b.targets[5], -1);
}

TEST(LmTrainer, BuildCorpusAugments) {
  data::DatasetConfig cfg;
  cfg.per_type = 4;
  cfg.seed = 301;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  const Tokenizer tok = Tokenizer::from_dataset(ds);
  Rng rng(17);
  const auto corpus = build_corpus(ds, tok, 3, 512, rng);
  const auto split = ds.split();
  EXPECT_EQ(corpus.train.size(), split.train.size() * 3);
  EXPECT_EQ(corpus.val.size(), split.val.size());
  for (const auto& s : corpus.train) {
    EXPECT_EQ(s.front(), tok.start_token());
    EXPECT_EQ(s.back(), Tokenizer::kEos);
  }
}

TEST(LmTrainer, PretrainingReducesLoss) {
  data::DatasetConfig dcfg;
  dcfg.per_type = 3;
  dcfg.seed = 302;
  dcfg.require_simulatable = false;
  const auto ds = data::Dataset::build(dcfg);
  const Tokenizer tok = Tokenizer::from_dataset(ds);
  Rng rng(18);
  const auto corpus = build_corpus(ds, tok, 2, 256, rng);

  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  PretrainConfig pcfg;
  pcfg.steps = 40;
  pcfg.batch = 4;
  pcfg.lr = 3e-3f;
  const auto result = pretrain(model, corpus, pcfg);
  ASSERT_EQ(result.losses.size(), 40u);
  const double first = result.losses.front();
  double last_avg = 0;
  for (int i = 0; i < 5; ++i) last_avg += result.losses[39 - static_cast<std::size_t>(i)];
  last_avg /= 5;
  EXPECT_LT(last_avg, first * 0.8) << "loss did not decrease";
  EXPECT_TRUE(std::isfinite(result.final_val_loss));
}

}  // namespace
