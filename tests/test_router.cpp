// Fleet-serving suite (DESIGN.md §13): consistent-hash ring remap
// bounds, backoff jitter bounds, circuit-breaker state machine on a fake
// clock, and live loopback fleets built from scripted fake replicas —
// failover on dropped/torn connections, breaker trip + half-open
// recovery via the health prober, hedged dispatch with loser
// cancellation, router-level load shedding, the shared cache sidecar
// (miss -> fill -> cross-replica hit), and real JsonLineServer replicas
// under injected serve_conn_drop / serve_partial_write faults.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "circuit/classify.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "serve/backoff.hpp"
#include "serve/net.hpp"
#include "serve/protocol.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/sidecar.hpp"
#include "train/signal.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

namespace {

using namespace eva;
using namespace eva::serve;
using Clock = std::chrono::steady_clock;

// --- scripted fake replica ---------------------------------------------------

/// Minimal JSON-lines server whose behaviour per request is scripted, so
/// failover/hedging/breaker assertions are exact. Every instance tags
/// its item line with its id, which survives the router's relay — the
/// test reads which replica actually answered off the response payload.
class FakeReplica {
 public:
  enum class Mode {
    kOk,       // item + ok terminator
    kDrop,     // read the request, close without answering
    kPartial,  // half an item line, then close (torn write)
    kReject,   // rejected terminator with retry_after_ms
    kStall,    // sleep stall_ms, then answer ok
  };

  explicit FakeReplica(int id, Mode mode = Mode::kOk) : id_(id), mode_(mode) {
    net::ignore_sigpipe();
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    ::listen(listen_fd_, 16);
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    acceptor_ = std::thread([this] { accept_loop(); });
  }

  ~FakeReplica() {
    stopping_.store(true);
    if (acceptor_.joinable()) acceptor_.join();
    ::close(listen_fd_);
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& t : handlers_) {
      if (t.joinable()) t.join();
    }
  }

  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] std::string addr() const {
    return "127.0.0.1:" + std::to_string(port_);
  }
  [[nodiscard]] int served() const { return served_.load(); }
  void set_mode(Mode m) { mode_.store(m); }
  void set_stall_ms(int ms) { stall_ms_.store(ms); }

 private:
  void accept_loop() {
    while (!stopping_.load()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 20) <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lk(mu_);
      handlers_.emplace_back([this, fd] { handle(fd); });
    }
  }

  void handle(int fd) {
    std::string buf;
    char chunk[2048];
    bool open = true;
    while (open && !stopping_.load()) {
      pollfd pfd{fd, POLLIN, 0};
      const int rc = ::poll(&pfd, 1, 20);
      if (rc < 0) break;
      if (rc == 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t nl;
      while (open && (nl = buf.find('\n')) != std::string::npos) {
        const std::string line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        if (line.empty()) continue;
        if (line.find("\"cmd\"") != std::string::npos) {
          // kDrop models a dead replica: probes fail like data traffic.
          // Every other mode answers probes so the prober keeps the
          // breaker closed and only the data path misbehaves.
          if (mode_.load() == Mode::kDrop) {
            open = false;
            continue;
          }
          open = net::send_line(
              fd, "{\"done\": true, \"status\": \"ok\", \"cmd\": \"stats\"}");
          continue;
        }
        served_.fetch_add(1);
        const std::string item = "{\"request_id\": 1, \"replica\": " +
                                 std::to_string(id_) +
                                 ", \"netlist\": \"fake\", \"decoded\": true, "
                                 "\"valid\": true, \"fom\": 1, "
                                 "\"cached\": false}";
        const std::string done =
            "{\"done\": true, \"status\": \"ok\", \"request_id\": 1, "
            "\"items\": 1, \"latency_ms\": 1}";
        switch (mode_.load()) {
          case Mode::kOk:
            open = net::send_line(fd, item) && net::send_line(fd, done);
            break;
          case Mode::kDrop:
            open = false;
            break;
          case Mode::kPartial:
            (void)net::send_all(fd,
                                std::string_view(item).substr(0, item.size() / 2));
            open = false;
            break;
          case Mode::kReject:
            open = net::send_line(
                fd,
                "{\"done\": true, \"status\": \"rejected\", \"request_id\": 1, "
                "\"items\": 0, \"latency_ms\": 0, \"retry_after_ms\": 7}");
            break;
          case Mode::kStall: {
            const auto until =
                Clock::now() + std::chrono::milliseconds(stall_ms_.load());
            while (Clock::now() < until && !stopping_.load()) {
              std::this_thread::sleep_for(std::chrono::milliseconds(5));
            }
            open = net::send_line(fd, item) && net::send_line(fd, done);
            break;
          }
        }
      }
    }
    ::close(fd);
  }

  int id_;
  std::atomic<Mode> mode_;
  std::atomic<int> stall_ms_{500};
  std::atomic<int> served_{0};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<std::thread> handlers_;
};

/// One client round trip through the router: send `line`, read until the
/// terminator, return every response line.
std::vector<std::string> round_trip(int port, const std::string& line,
                                    double timeout_ms = 5000.0) {
  std::vector<std::string> lines;
  const int fd = net::connect_with_deadline("127.0.0.1", port, 2000.0);
  if (fd < 0) return lines;
  if (net::send_line(fd, line)) {
    net::LineReader reader(fd);
    const auto deadline =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double, std::milli>(timeout_ms));
    std::string resp;
    while (reader.read_line(resp, deadline) == net::LineReader::Result::kLine) {
      lines.push_back(resp);
      if (resp.find("\"done\"") != std::string::npos) break;
    }
  }
  ::close(fd);
  return lines;
}

bool payload_mentions(const std::vector<std::string>& lines,
                      const std::string& needle) {
  for (const auto& l : lines) {
    if (l.find(needle) != std::string::npos) return true;
  }
  return false;
}

RouterConfig fast_router(std::vector<std::string> backends) {
  RouterConfig cfg;
  cfg.port = 0;
  cfg.backends = std::move(backends);
  cfg.health_interval_ms = 50.0;
  cfg.probe_timeout_ms = 300.0;
  cfg.replica_timeout_ms = 2000.0;
  cfg.backoff = BackoffPolicy{3, 1.0, 5.0};  // keep test failovers snappy
  cfg.breaker_cooldown_ms = 200.0;
  return cfg;
}

/// A seed whose ring placement puts replica index `want` first, given
/// the router's own hash (type OpAmp, the config's vnodes). Lets tests
/// pin which backend is "primary" for a request.
std::uint64_t seed_with_primary(std::size_t n_backends, std::size_t want,
                                int vnodes) {
  std::vector<std::size_t> members(n_backends);
  for (std::size_t i = 0; i < n_backends; ++i) members[i] = i;
  const HashRing ring(members, vnodes);
  const int tag = static_cast<int>(circuit::CircuitType::OpAmp);
  for (std::uint64_t seed = 1; seed < 10000; ++seed) {
    if (ring.primary(request_ring_key(tag, seed, 0)) == want) return seed;
  }
  return 1;  // unreachable for any sane ring
}

// --- hash ring ---------------------------------------------------------------

TEST(HashRingTest, PreferenceCoversAllMembersPrimaryFirst) {
  const HashRing ring({0, 1, 2, 3}, 32);
  for (std::uint64_t k = 0; k < 200; ++k) {
    const std::uint64_t key = BackoffPolicy::splitmix64(k);
    const auto pref = ring.preference(key);
    ASSERT_EQ(pref.size(), 4u);
    EXPECT_EQ(pref[0], ring.primary(key));
    EXPECT_EQ(std::set<std::size_t>(pref.begin(), pref.end()).size(), 4u);
  }
}

TEST(HashRingTest, RemovingAMemberRemapsOnlyItsKeys) {
  const std::vector<std::size_t> all = {0, 1, 2, 3, 4};
  const std::vector<std::size_t> without2 = {0, 1, 3, 4};
  const HashRing full(all, 64);
  const HashRing partial(without2, 64);
  const int n_keys = 20000;
  int owned_by_2 = 0;
  for (int i = 0; i < n_keys; ++i) {
    const std::uint64_t key = BackoffPolicy::splitmix64(0xABCDEF + i);
    const std::size_t before = full.primary(key);
    const std::size_t after = partial.primary(key);
    if (before == 2) {
      ++owned_by_2;
      EXPECT_NE(after, 2u);
    } else {
      // The minimal-remap property: keys not owned by the removed
      // member do not move at all.
      EXPECT_EQ(after, before) << "key " << i << " moved gratuitously";
    }
  }
  // Ownership is roughly balanced: the removed member held ~1/5.
  EXPECT_GT(owned_by_2, n_keys / 10);
  EXPECT_LT(owned_by_2, n_keys * 2 / 5);
}

TEST(HashRingTest, SeededRequestsPinReplicasUnseededSpread) {
  const int tag = static_cast<int>(circuit::CircuitType::OpAmp);
  // Same seed -> same key regardless of spread; unseeded requests follow
  // the spread counter instead.
  EXPECT_EQ(request_ring_key(tag, 42, 0), request_ring_key(tag, 42, 99));
  EXPECT_NE(request_ring_key(tag, 0, 1), request_ring_key(tag, 0, 2));
  // Different circuit types with one seed land on different keys.
  EXPECT_NE(request_ring_key(0, 42, 0), request_ring_key(1, 42, 0));
}

// --- backoff -----------------------------------------------------------------

TEST(BackoffTest, DelaysAreJitteredBoundedAndDeterministic) {
  const BackoffPolicy p{5, 10.0, 80.0};
  EXPECT_EQ(p.delay_ms(0, 1), 0.0);
  double prev_cap = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double cap = std::min(80.0, 10.0 * (1 << (k - 1)));
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      const double d = p.delay_ms(k, seed);
      EXPECT_GE(d, cap * 0.5) << "k=" << k;
      EXPECT_LT(d, cap) << "k=" << k;
      EXPECT_EQ(d, p.delay_ms(k, seed)) << "jitter must be deterministic";
    }
    EXPECT_GE(cap, prev_cap);
    prev_cap = cap;
  }
}

// --- circuit breaker ---------------------------------------------------------

TEST(CircuitBreakerTest, TripHalfOpenRecoverSequence) {
  CircuitBreaker b(3, 100.0);
  const auto t0 = Clock::now();
  EXPECT_TRUE(b.allow(t0));
  EXPECT_FALSE(b.record_failure(t0));
  EXPECT_FALSE(b.record_failure(t0));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(b.record_failure(t0));  // third consecutive failure trips
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(b.allow(t0 + std::chrono::milliseconds(50)));  // still cooling
  // Cooldown elapsed: exactly one half-open trial is admitted.
  const auto t1 = t0 + std::chrono::milliseconds(150);
  EXPECT_TRUE(b.allow(t1));
  EXPECT_EQ(b.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(b.allow(t1)) << "only one trial in half-open";
  EXPECT_TRUE(b.record_success());  // trial succeeded: recovered
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
  EXPECT_FALSE(b.record_success()) << "success while closed is not a recovery";
}

TEST(CircuitBreakerTest, FailedTrialReopens) {
  CircuitBreaker b(2, 50.0);
  const auto t0 = Clock::now();
  EXPECT_FALSE(b.record_failure(t0));
  EXPECT_TRUE(b.record_failure(t0));
  const auto t1 = t0 + std::chrono::milliseconds(60);
  EXPECT_TRUE(b.allow(t1));
  EXPECT_TRUE(b.record_failure(t1));  // trial failed: re-tripped
  EXPECT_EQ(b.state(), CircuitBreaker::State::kOpen);
  // A second cooldown still leads to recovery eventually.
  const auto t2 = t1 + std::chrono::milliseconds(60);
  EXPECT_TRUE(b.allow(t2));
  EXPECT_TRUE(b.record_success());
  EXPECT_EQ(b.state(), CircuitBreaker::State::kClosed);
}

// --- backend list parsing ----------------------------------------------------

TEST(RouterConfigTest, ParseBackendList) {
  const auto got =
      parse_backend_list(" 127.0.0.1:7077, 10.0.0.2:7078 ,bad,host:0,:1,x:");
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "127.0.0.1:7077");
  EXPECT_EQ(got[1], "10.0.0.2:7078");
  EXPECT_TRUE(parse_backend_list("").empty());
}

TEST(RouterConfigTest, BadConfigThrows) {
  RouterConfig none;
  EXPECT_THROW(Router r(none), ConfigError);
  RouterConfig bad;
  bad.backends = {"nonsense"};
  EXPECT_THROW(Router r(bad), ConfigError);
}

// --- live fleets of fake replicas -------------------------------------------

TEST(RouterFleetTest, FailoverOnConnDropReachesSurvivor) {
  FakeReplica a(0, FakeReplica::Mode::kDrop);
  FakeReplica b(1, FakeReplica::Mode::kOk);
  auto cfg = fast_router({a.addr(), b.addr()});
  Router router(cfg);
  const int port = router.listen_and_start();

  const auto lines = round_trip(port, "{\"n\": 1, \"seed\": 3}");
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(payload_mentions(lines, "\"replica\": 1"))
      << "response must come from the surviving replica";
  EXPECT_TRUE(lines.back().find("\"status\": \"ok\"") != std::string::npos);
  router.stop();
}

TEST(RouterFleetTest, TornReplicaWriteNeverReachesTheClient) {
  FakeReplica a(0, FakeReplica::Mode::kPartial);
  FakeReplica b(1, FakeReplica::Mode::kPartial);
  FakeReplica c(2, FakeReplica::Mode::kOk);
  auto cfg = fast_router({a.addr(), b.addr(), c.addr()});
  cfg.max_attempts = 6;
  Router router(cfg);
  const int port = router.listen_and_start();

  for (int i = 0; i < 4; ++i) {
    const auto lines = round_trip(
        port, "{\"n\": 1, \"seed\": " + std::to_string(40 + i) + "}");
    ASSERT_FALSE(lines.empty());
    for (const auto& l : lines) {
      ASSERT_FALSE(l.empty());
      // Whole-response buffering: a replica that died mid-line must be
      // invisible — every line the client sees is a complete object.
      EXPECT_EQ(l.front(), '{');
      EXPECT_EQ(l.back(), '}');
    }
    EXPECT_TRUE(lines.back().find("\"done\"") != std::string::npos);
  }
  router.stop();
}

TEST(RouterFleetTest, AllReplicasDownResolvesUnavailable) {
  FakeReplica a(0, FakeReplica::Mode::kDrop);
  FakeReplica b(1, FakeReplica::Mode::kDrop);
  auto cfg = fast_router({a.addr(), b.addr()});
  cfg.max_attempts = 3;
  Router router(cfg);
  const int port = router.listen_and_start();

  const auto lines = round_trip(port, "{\"n\": 1, \"seed\": 9}");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].find("\"status\": \"unavailable\"") !=
              std::string::npos);
  EXPECT_TRUE(lines[0].find("\"retry_after_ms\"") != std::string::npos);
  router.stop();
}

TEST(RouterFleetTest, RejectionPassesThroughWithoutFailover) {
  FakeReplica a(0, FakeReplica::Mode::kReject);
  FakeReplica b(1, FakeReplica::Mode::kReject);
  auto cfg = fast_router({a.addr(), b.addr()});
  Router router(cfg);
  const int port = router.listen_and_start();

  const auto lines = round_trip(port, "{\"n\": 1, \"seed\": 4}");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].find("\"status\": \"rejected\"") != std::string::npos);
  EXPECT_TRUE(lines[0].find("\"retry_after_ms\": 7") != std::string::npos);
  // Backpressure is not a replica fault: exactly one attempt was made.
  EXPECT_EQ(a.served() + b.served(), 1);
  router.stop();
}

TEST(RouterFleetTest, BreakerTripsOnDeadReplicaAndProberRecovers) {
  FakeReplica a(0, FakeReplica::Mode::kOk);
  FakeReplica b(1, FakeReplica::Mode::kOk);
  auto cfg = fast_router({a.addr(), b.addr()});
  cfg.breaker_threshold = 2;
  cfg.breaker_cooldown_ms = 150.0;
  cfg.health_interval_ms = 40.0;
  Router router(cfg);
  const int port = router.listen_and_start();

  auto wait_for = [&](std::size_t idx, auto pred) {
    const auto give_up = Clock::now() + std::chrono::seconds(5);
    while (Clock::now() < give_up) {
      const auto snap = router.replica_snapshots()[idx];
      if (pred(snap)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return false;
  };
  ASSERT_TRUE(wait_for(0, [](const Router::ReplicaSnapshot& s) {
    return s.healthy && s.breaker == CircuitBreaker::State::kClosed;
  })) << "first probe round must mark the replica healthy";

  // Kill replica 0's behaviour entirely (probes and data both hang up):
  // consecutive probe failures trip the threshold-2 breaker with no
  // client traffic at all.
  a.set_mode(FakeReplica::Mode::kDrop);
  ASSERT_TRUE(wait_for(0, [](const Router::ReplicaSnapshot& s) {
    return s.breaker == CircuitBreaker::State::kOpen && !s.healthy;
  })) << "probe failures must trip the breaker";

  // Requests pinned to the dead replica fail over to the survivor.
  const std::uint64_t s0 = seed_with_primary(2, 0, cfg.vnodes);
  const auto lines =
      round_trip(port, "{\"n\": 1, \"seed\": " + std::to_string(s0) + "}");
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(payload_mentions(lines, "\"replica\": 1"));

  // Heal the replica: after the cooldown the prober's half-open trial
  // succeeds and the breaker closes — recovery needs no data traffic.
  a.set_mode(FakeReplica::Mode::kOk);
  EXPECT_TRUE(wait_for(0, [](const Router::ReplicaSnapshot& s) {
    return s.breaker == CircuitBreaker::State::kClosed && s.healthy;
  })) << "prober must recover a healed replica";
  router.stop();
}

TEST(RouterFleetTest, HedgedHighPriorityWinsOnStalledPrimary) {
  FakeReplica a(0, FakeReplica::Mode::kStall);
  a.set_stall_ms(800);
  FakeReplica b(1, FakeReplica::Mode::kOk);
  auto cfg = fast_router({a.addr(), b.addr()});
  cfg.hedge_delay_ms = 50.0;
  cfg.replica_timeout_ms = 5000.0;
  Router router(cfg);
  const int port = router.listen_and_start();

  const std::uint64_t s0 = seed_with_primary(2, 0, cfg.vnodes);
  const auto t0 = Clock::now();
  const auto lines = round_trip(
      port, "{\"n\": 1, \"priority\": \"high\", \"seed\": " +
                std::to_string(s0) + "}");
  const double took =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(payload_mentions(lines, "\"replica\": 1"))
      << "the hedge to the fast replica must win";
  EXPECT_LT(took, 700.0) << "winner must not wait for the stalled primary";
  router.stop();

  // The loser was cancelled by socket shutdown; the stalled replica saw
  // the request but its answer went nowhere.
  EXPECT_GE(a.served(), 1);
  EXPECT_GE(b.served(), 1);
}

TEST(RouterFleetTest, ShedsAboveMaxInflight) {
  FakeReplica a(0, FakeReplica::Mode::kStall);
  a.set_stall_ms(400);
  auto cfg = fast_router({a.addr()});
  cfg.max_inflight = 1;
  cfg.shed_retry_after_ms = 33.0;
  Router router(cfg);
  const int port = router.listen_and_start();

  std::thread slow([&] {
    const auto lines = round_trip(port, "{\"n\": 1, \"seed\": 5}");
    EXPECT_FALSE(lines.empty());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto lines = round_trip(port, "{\"n\": 1, \"seed\": 6}");
  slow.join();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(lines[0].find("\"status\": \"rejected\"") != std::string::npos);
  EXPECT_TRUE(lines[0].find("\"shed_by\": \"router\"") != std::string::npos);
  EXPECT_TRUE(lines[0].find("\"retry_after_ms\": 33") != std::string::npos);
  router.stop();
}

// --- shared cache tier -------------------------------------------------------

TEST(CacheSidecarTest, ProtocolRoundTrip) {
  CacheSidecar cache({/*bind_addr=*/"127.0.0.1", /*port=*/0,
                      /*max_entries=*/4, /*max_value_bytes=*/256,
                      /*idle_ms=*/0.0});
  const int port = cache.listen_and_start();
  const int fd = net::connect_with_deadline("127.0.0.1", port, 1000.0);
  ASSERT_GE(fd, 0);
  net::LineReader reader(fd);
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  std::string line;

  ASSERT_TRUE(net::send_line(fd, "{\"cmd\": \"cache_get\", \"key\": \"k1\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"hit\": false") != std::string::npos);

  ASSERT_TRUE(net::send_line(
      fd, "{\"cmd\": \"cache_put\", \"key\": \"k1\", \"value\": \"vv\\n\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"stored\": true") != std::string::npos);

  // Read-your-writes on the very next command.
  ASSERT_TRUE(net::send_line(fd, "{\"cmd\": \"cache_get\", \"key\": \"k1\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"hit\": true") != std::string::npos);
  EXPECT_TRUE(line.find("\"value\": \"vv\\n\"") != std::string::npos)
      << line;

  // Oversized values are refused, not fatal.
  std::string big(1000, 'x');
  ASSERT_TRUE(net::send_line(
      fd, "{\"cmd\": \"cache_put\", \"key\": \"k2\", \"value\": \"" + big +
              "\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"stored\": false") != std::string::npos);

  ASSERT_TRUE(net::send_line(fd, "{\"cmd\": \"stats\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"cache_sidecar\"") != std::string::npos);
  EXPECT_TRUE(line.find("\"size\": 1") != std::string::npos);

  // Generation requests belong to replicas.
  ASSERT_TRUE(net::send_line(fd, "{\"n\": 1}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"status\": \"bad_request\"") != std::string::npos);

  ::close(fd);
  cache.stop();
  EXPECT_EQ(cache.size(), 1u);
}

TEST(CacheSidecarTest, LruEvictsBeyondCapacity) {
  CacheSidecar cache({/*bind_addr=*/"127.0.0.1", /*port=*/0,
                      /*max_entries=*/2, /*max_value_bytes=*/256,
                      /*idle_ms=*/0.0});
  const int port = cache.listen_and_start();
  const int fd = net::connect_with_deadline("127.0.0.1", port, 1000.0);
  ASSERT_GE(fd, 0);
  net::LineReader reader(fd);
  const auto deadline = Clock::now() + std::chrono::seconds(2);
  std::string line;
  for (const char* k : {"a", "b", "c"}) {
    ASSERT_TRUE(net::send_line(fd, std::string("{\"cmd\": \"cache_put\", "
                                               "\"key\": \"") +
                                       k + "\", \"value\": \"v\"}"));
    ASSERT_EQ(reader.read_line(line, deadline),
              net::LineReader::Result::kLine);
  }
  EXPECT_EQ(cache.size(), 2u);
  // "a" was least recently used and is gone; "c" is resident.
  ASSERT_TRUE(net::send_line(fd, "{\"cmd\": \"cache_get\", \"key\": \"a\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"hit\": false") != std::string::npos);
  ASSERT_TRUE(net::send_line(fd, "{\"cmd\": \"cache_get\", \"key\": \"c\"}"));
  ASSERT_EQ(reader.read_line(line, deadline), net::LineReader::Result::kLine);
  EXPECT_TRUE(line.find("\"hit\": true") != std::string::npos);
  ::close(fd);
  cache.stop();
}

TEST(RouterFleetTest, CacheMissFillThenCrossReplicaHit) {
  CacheSidecar cache({/*bind_addr=*/"127.0.0.1", /*port=*/0,
                      /*max_entries=*/64, /*max_value_bytes=*/1 << 16,
                      /*idle_ms=*/0.0});
  const int cache_port = cache.listen_and_start();
  FakeReplica a(0, FakeReplica::Mode::kOk);
  FakeReplica b(1, FakeReplica::Mode::kOk);
  auto cfg = fast_router({a.addr(), b.addr()});
  cfg.cache_addr = "127.0.0.1:" + std::to_string(cache_port);
  Router router(cfg);
  const int port = router.listen_and_start();

  const std::string req = "{\"n\": 1, \"seed\": 77}";
  const auto first = round_trip(port, req);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(cache.size(), 1u) << "first ok response must fill the sidecar";
  const int served_after_first = a.served() + b.served();
  EXPECT_EQ(served_after_first, 1);

  // Kill both replicas: the identical request must now be served purely
  // from the shared cache — byte-identical payload, no replica traffic.
  a.set_mode(FakeReplica::Mode::kDrop);
  b.set_mode(FakeReplica::Mode::kDrop);
  const auto second = round_trip(port, req);
  EXPECT_EQ(second, first);
  EXPECT_EQ(a.served() + b.served(), served_after_first)
      << "a cache hit must not touch any replica";

  // An unseeded request is not idempotent and must bypass the cache.
  const auto third = round_trip(port, "{\"n\": 1}");
  ASSERT_EQ(third.size(), 1u);
  EXPECT_TRUE(third[0].find("\"status\": \"unavailable\"") !=
              std::string::npos);
  router.stop();
  cache.stop();
}

// --- real replicas under injected faults ------------------------------------

TEST(RouterFleetTest, RealReplicasFailoverUnderInjectedFaults) {
  train::clear_stop();
  nn::Tokenizer tok({4, 4, 2, 2, 2, 2, 2, 2});
  Rng rng(7);
  nn::TransformerLM model(nn::ModelConfig::tiny(tok.vocab_size()), rng);
  ServiceConfig scfg;
  scfg.batch_width = 4;
  scfg.sample.max_len = 48;
  GenerationService svc_a(model, tok, scfg);
  GenerationService svc_b(model, tok, scfg);
  ServerConfig server_cfg;
  server_cfg.port = 0;
  JsonLineServer server_a(svc_a, server_cfg);
  JsonLineServer server_b(svc_b, server_cfg);
  const int port_a = server_a.listen_and_start();
  const int port_b = server_b.listen_and_start();

  auto cfg = fast_router({"127.0.0.1:" + std::to_string(port_a),
                          "127.0.0.1:" + std::to_string(port_b)});
  cfg.max_attempts = 6;
  Router router(cfg);
  const int port = router.listen_and_start();

  // The first two generation requests that reach a replica hang up
  // without answering, the third tears its first response line in half.
  // Both servers share the process-wide spec; whichever replica the ring
  // picks, the router must absorb the fault and answer from a retry.
  fault::set_spec("serve_conn_drop:1,serve_conn_drop:2,serve_partial_write:3");
  for (int i = 0; i < 4; ++i) {
    const auto lines = round_trip(
        port, "{\"n\": 1, \"seed\": " + std::to_string(100 + i) + "}", 10000.0);
    ASSERT_FALSE(lines.empty()) << "request " << i;
    for (const auto& l : lines) {
      ASSERT_FALSE(l.empty());
      EXPECT_EQ(l.front(), '{');
      EXPECT_EQ(l.back(), '}');
    }
    EXPECT_TRUE(lines.back().find("\"status\": \"ok\"") != std::string::npos)
        << "request " << i << " got: " << lines.back();
  }
  fault::set_spec("");
  router.stop();
  server_a.stop();
  server_b.stop();
}

}  // namespace
