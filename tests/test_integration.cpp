// Cross-module integration and property tests: pipeline determinism,
// pretraining effects on generation, representation invariants across the
// whole dataset, and simulator physics properties.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/canon.hpp"
#include "circuit/graphstats.hpp"
#include "circuit/pingraph.hpp"
#include "core/eva.hpp"
#include "data/builder.hpp"
#include "eval/metrics.hpp"
#include "nn/lm_trainer.hpp"
#include "opt/ga.hpp"
#include "spice/engine.hpp"

namespace {

using namespace eva;
using circuit::CircuitType;
using circuit::DeviceKind;
using circuit::IoPin;
using circuit::Netlist;

core::EvaConfig tiny_cfg(std::uint64_t seed) {
  core::EvaConfig cfg;
  cfg.seed = seed;
  cfg.dataset.per_type = 5;
  cfg.dataset.seed = seed + 1;
  cfg.dataset.require_simulatable = false;
  cfg.tours_per_topology = 2;
  cfg.model = nn::ModelConfig::tiny(0);
  cfg.pretrain.steps = 50;
  cfg.pretrain.batch = 4;
  return cfg;
}

TEST(Integration, PipelineIsDeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    core::Eva engine(tiny_cfg(seed));
    engine.prepare();
    engine.pretrain();
    std::vector<std::vector<int>> ids;
    Rng srng(99);
    nn::SampleOptions opts;
    opts.max_len = 64;
    for (int i = 0; i < 3; ++i) {
      ids.push_back(
          nn::sample_sequence(engine.model(), engine.tokenizer(), srng, opts)
              .ids);
    }
    return ids;
  };
  EXPECT_EQ(run(1234), run(1234));
}

TEST(Integration, PretrainingRaisesDatasetTourLikelihood) {
  core::Eva engine(tiny_cfg(555));
  engine.prepare();
  const double loss_before =
      nn::eval_lm_loss(engine.model(), engine.corpus().val);
  engine.pretrain();
  const double loss_after =
      nn::eval_lm_loss(engine.model(), engine.corpus().val);
  EXPECT_LT(loss_after, loss_before);
}

TEST(Integration, PretrainedGenerationNoWorseThanRandom) {
  core::Eva trained(tiny_cfg(777));
  trained.prepare();
  trained.pretrain();
  const auto ev_trained = trained.evaluate_generation(15);

  core::Eva random_model(tiny_cfg(777));
  random_model.prepare();
  const auto ev_random = random_model.evaluate_generation(15);

  EXPECT_GE(ev_trained.valid, ev_random.valid);
}

// Representation invariant across every dataset topology: the pin graph
// has even degrees everywhere, is connected, and its edge count matches
// the closed-form sum of net-cycle and device-cycle contributions.
TEST(Integration, PinGraphEdgeCountFormulaHoldsDatasetWide) {
  data::DatasetConfig cfg;
  cfg.per_type = 4;
  cfg.seed = 1001;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  for (const auto& e : ds.entries()) {
    const auto g = circuit::PinGraph::from_netlist(e.netlist);
    EXPECT_TRUE(g.all_degrees_even());
    EXPECT_TRUE(g.connected());
    std::size_t expect = 0;
    for (const auto& d : e.netlist.devices()) {
      expect += pin_count(d.kind) == 2 ? 2u
                                       : static_cast<std::size_t>(
                                             pin_count(d.kind));
    }
    for (const auto& net : e.netlist.nets()) {
      if (net.size() == 2) {
        expect += 2;
      } else if (net.size() >= 3) {
        expect += net.size();
      }
    }
    EXPECT_EQ(g.num_edges(), expect);
  }
}

TEST(Integration, DoubleRoundTripIsStable) {
  Rng rng(1002);
  data::DatasetConfig cfg;
  cfg.per_type = 3;
  cfg.seed = 1003;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  for (const auto& e : ds.entries()) {
    const auto t1 = circuit::encode_tour(e.netlist, rng);
    const auto r1 = circuit::decode_tour(t1);
    ASSERT_TRUE(r1.ok);
    const auto t2 = circuit::encode_tour(r1.netlist, rng);
    const auto r2 = circuit::decode_tour(t2);
    ASSERT_TRUE(r2.ok);
    EXPECT_EQ(circuit::canonical_hash(r1.netlist),
              circuit::canonical_hash(r2.netlist));
  }
}

TEST(Integration, SizingDeterministicGa) {
  data::NetBuilder b;
  b.rails();
  b.io("in", IoPin::Vin1);
  b.io("out", IoPin::Vout1);
  b.mos(DeviceKind::Nmos, "in", "out", "VSS");
  b.two(DeviceKind::Resistor, "VDD", "out");
  const Netlist nl = b.take();
  opt::GaConfig ga;
  ga.population = 8;
  ga.generations = 3;
  ga.seed = 31337;
  const auto a = opt::size_topology(nl, CircuitType::OpAmp, ga);
  const auto b2 = opt::size_topology(nl, CircuitType::OpAmp, ga);
  ASSERT_TRUE(a.ok && b2.ok);
  EXPECT_EQ(a.sizing.value, b2.sizing.value);
  EXPECT_DOUBLE_EQ(a.perf.fom, b2.perf.fom);
}

TEST(Integration, SupplyScalingMovesDividerOutput) {
  data::NetBuilder b;
  b.rails();
  b.io("out", IoPin::Vout1);
  b.two(DeviceKind::Resistor, "VDD", "out");
  b.two(DeviceKind::Resistor, "out", "VSS");
  const Netlist nl = b.take();
  auto vout_at = [&](double vdd) {
    spice::SimOptions opts;
    opts.vdd = vdd;
    spice::Simulator sim(nl, spice::default_sizing(nl), opts);
    EXPECT_TRUE(sim.solve_dc());
    return sim.io_voltage(IoPin::Vout1);
  };
  EXPECT_NEAR(vout_at(3.6) / vout_at(1.8), 2.0, 0.01);
}

TEST(Integration, MmdOfDatasetWithItselfIsSmallest) {
  data::DatasetConfig cfg;
  cfg.per_type = 4;
  cfg.seed = 1004;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  std::vector<std::vector<double>> all, opamps;
  for (const auto& e : ds.entries()) {
    all.push_back(circuit::stats_vector(e.netlist));
    if (e.type == CircuitType::OpAmp) {
      opamps.push_back(circuit::stats_vector(e.netlist));
    }
  }
  const double self_mmd = eval::mmd_gaussian(all, all, 1.0);
  const double sub_mmd = eval::mmd_gaussian(opamps, all, 1.0);
  EXPECT_NEAR(self_mmd, 0.0, 1e-9);
  EXPECT_GT(sub_mmd, self_mmd);
}

TEST(Integration, TokenizerVocabMatchesLimitFormula) {
  data::DatasetConfig cfg;
  cfg.per_type = 3;
  cfg.seed = 1005;
  cfg.require_simulatable = false;
  const auto ds = data::Dataset::build(cfg);
  const auto tok = nn::Tokenizer::from_dataset(ds, 1.0);
  int expect = 2 + circuit::kNumIoPins;
  for (int k = 0; k < circuit::kNumDeviceKinds; ++k) {
    expect += tok.limits()[static_cast<std::size_t>(k)] *
              pin_count(static_cast<DeviceKind>(k));
  }
  EXPECT_EQ(tok.vocab_size(), expect);
}

TEST(Integration, DiscoverReportsRelevantFraction) {
  // A fixed generator emitting one known Op-Amp: discover() must classify
  // all attempts as relevant and size them.
  data::NetBuilder b;
  b.rails();
  b.io("inp", IoPin::Vin1);
  b.io("inn", IoPin::Vin2);
  b.io("bt", IoPin::Vb1);
  b.mos(DeviceKind::Nmos, "inp", "d1", "tail");
  b.mos(DeviceKind::Nmos, "inn", "out", "tail");
  b.mos(DeviceKind::Nmos, "bt", "tail", "VSS");
  b.mos(DeviceKind::Pmos, "d1", "d1", "VDD");
  b.mos(DeviceKind::Pmos, "d1", "out", "VDD");
  b.io("out", IoPin::Vout1);
  const Netlist ota = b.take();
  opt::GaConfig ga;
  ga.population = 8;
  ga.generations = 2;
  const auto res = eval::fom_at_k([&]() { return eval::Attempt{ota}; }, 4,
                                  CircuitType::OpAmp, ga);
  EXPECT_EQ(res.relevant, 4);
  EXPECT_GT(res.best_fom, 0.0);
  // FoM@k is monotone in k for a deterministic generator.
  const auto res2 = eval::fom_at_k([&]() { return eval::Attempt{ota}; }, 1,
                                   CircuitType::OpAmp, ga);
  EXPECT_GE(res.best_fom, res2.best_fom - 1e-9);
}

}  // namespace
