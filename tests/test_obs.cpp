// Tests for the observability layer (src/obs): metrics registry
// correctness under the thread pool, logger sinks and env control, trace
// JSON well-formedness. Run these under EVA_SANITIZE=thread to certify
// the concurrent paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace {

using namespace eva;

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent structural check (no value extraction): enough to
// catch unbalanced braces, missing commas, and broken string escaping in
// the exporters without pulling in a JSON library.

struct JsonParser {
  std::string_view s;
  std::size_t i = 0;

  void ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool eat(char c) {
    ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return false;
        ++i;  // skip escaped char ("\uXXXX" leaves XXXX as literals — fine)
      } else if (c == '"') {
        return true;
      }
    }
    return false;
  }
  bool number() {
    ws();
    bool digit = false;
    const std::size_t start = i;
    while (i < s.size() &&
           (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
            s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
            s[i] == 'E')) {
      digit = digit || std::isdigit(static_cast<unsigned char>(s[i])) != 0;
      ++i;
    }
    return i > start && digit;
  }
  bool literal(std::string_view word) {
    ws();
    if (s.substr(i, word.size()) == word) {
      i += word.size();
      return true;
    }
    return false;
  }
  bool value() {
    ws();
    if (i >= s.size()) return false;
    switch (s[i]) {
      case '"': return string();
      case '{': return object();
      case '[': return array();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    if (!eat('{')) return false;
    if (eat('}')) return true;
    do {
      if (!string() || !eat(':') || !value()) return false;
    } while (eat(','));
    return eat('}');
  }
  bool array() {
    if (!eat('[')) return false;
    if (eat(']')) return true;
    do {
      if (!value()) return false;
    } while (eat(','));
    return eat(']');
  }
};

bool json_valid(std::string_view text) {
  JsonParser p{text};
  if (!p.value()) return false;
  p.ws();
  return p.i == text.size();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- JSON validator self-test ----------------------------------------------

TEST(ObsJson, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_valid(R"({"a":1,"b":[1,2.5,-3e4],"c":{"d":"x\"y"}})"));
  EXPECT_TRUE(json_valid(R"([true,false,null])"));
  EXPECT_FALSE(json_valid(R"({"a":1)"));
  EXPECT_FALSE(json_valid(R"({"a":})"));
  EXPECT_FALSE(json_valid(R"({"a":1}extra)"));
  EXPECT_FALSE(json_valid(R"({"unterminated)"));
}

// --- metrics ----------------------------------------------------------------

TEST(ObsMetrics, CounterConcurrentIncrementsAreExact) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  c.reset();
  const std::size_t n = 10000;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t) { c.add(); });
  set_num_threads(0);
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(n));
}

TEST(ObsMetrics, CounterAddWithWeightAndReset) {
  obs::Counter& c = obs::counter("test.weighted_counter");
  c.reset();
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsMetrics, RegistryReturnsSameObjectForSameName) {
  obs::Counter& a = obs::counter("test.same_name");
  obs::Counter& b = obs::counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(ObsMetrics, GaugeStoresLastValue) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(ObsMetrics, HistogramPercentileSnapshot) {
  obs::Histogram& h = obs::histogram("test.hist_percentiles");
  h.reset();
  // 1..1000 fits the reservoir, so percentiles are exact interpolations.
  for (int v = 1; v <= 1000; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p90, 900.0, 1.5);
  EXPECT_NEAR(s.p99, 990.0, 1.5);
}

TEST(ObsMetrics, EmptyHistogramSnapshotIsZero) {
  obs::Histogram& h = obs::histogram("test.hist_empty");
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(ObsMetrics, HistogramBeyondReservoirKeepsExactAggregates) {
  obs::Histogram& h = obs::histogram("test.hist_overflow");
  h.reset();
  const int n = 10000;  // > reservoir capacity (4096)
  for (int v = 0; v < n; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, n - 1.0);
  EXPECT_NEAR(s.mean, (n - 1.0) / 2.0, 1e-6);
  // Percentiles are sampled, but must stay inside the recorded range
  // and keep their ordering.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(ObsMetrics, ConcurrentHistogramAndCounterFromPool) {
  obs::Counter& c = obs::counter("test.pool_counter");
  obs::Histogram& h = obs::histogram("test.pool_hist");
  c.reset();
  h.reset();
  const std::size_t n = 2000;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t i) {
    c.add(2);
    h.record(static_cast<double>(i));
  });
  set_num_threads(0);
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(2 * n));
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(n));
}

TEST(ObsMetrics, MetricsJsonIsWellFormed) {
  obs::counter("test.json_counter").add(42);
  obs::gauge("test.json_gauge").set(3.5);
  obs::histogram("test.json_hist").record(1.0);
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
}

TEST(ObsMetrics, WriteMetricsProducesValidFile) {
  const std::string path = ::testing::TempDir() + "eva_test_metrics.json";
  obs::counter("test.file_counter").add(1);
  ASSERT_TRUE(obs::write_metrics(path));
  const std::string content = read_file(path);
  EXPECT_TRUE(json_valid(content)) << content;
  std::remove(path.c_str());
}

// --- logging ----------------------------------------------------------------

TEST(ObsLog, ParseLevelNamesCaseInsensitive) {
  using obs::LogLevel;
  EXPECT_EQ(obs::parse_log_level("trace", LogLevel::kOff), LogLevel::kTrace);
  EXPECT_EQ(obs::parse_log_level("DEBUG", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("Info", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(obs::parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(ObsLog, EnvVarDrivesLevelFiltering) {
  ::setenv("EVA_LOG_LEVEL", "error", 1);
  obs::reload_log_env();
  EXPECT_EQ(obs::log_level(), obs::LogLevel::kError);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));

  ::setenv("EVA_LOG_LEVEL", "debug", 1);
  obs::reload_log_env();
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kTrace));

  ::unsetenv("EVA_LOG_LEVEL");
  obs::set_log_level(obs::LogLevel::kInfo);
}

TEST(ObsLog, FilteredEventsDoNotReachTheJsonlSink) {
  const std::string path = ::testing::TempDir() + "eva_test_filtered.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_level(obs::LogLevel::kWarn);
  obs::set_log_file(path);
  obs::log_info("test.should_be_dropped");
  obs::log_warn("test.should_appear");
  obs::set_log_file("");
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::set_log_stderr(true);

  const std::string content = read_file(path);
  EXPECT_EQ(content.find("should_be_dropped"), std::string::npos);
  EXPECT_NE(content.find("should_appear"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsLog, ConcurrentJsonlLinesAreWholeAndValid) {
  const std::string path = ::testing::TempDir() + "eva_test_concurrent.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_file(path);
  obs::Counter& c = obs::counter("test.log_counter");
  c.reset();
  const std::size_t n = 500;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t i) {
    c.add();
    obs::log_info("test.worker_event", {{"i", i}, {"tag", "worker"}});
  });
  set_num_threads(0);
  obs::set_log_file("");
  obs::set_log_stderr(true);

  EXPECT_EQ(c.value(), static_cast<std::int64_t>(n));
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(json_valid(line)) << line;
    EXPECT_NE(line.find("test.worker_event"), std::string::npos);
  }
  EXPECT_EQ(lines, n);
  std::remove(path.c_str());
}

TEST(ObsLog, RateLimitedLoggingEmitsFirstThenEveryNth) {
  const std::string path = ::testing::TempDir() + "eva_test_ratelimit.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_file(path);
  for (int i = 0; i < 100; ++i) {
    obs::log_every_n(obs::LogLevel::kWarn, "test.rate_limited", 10,
                     {{"i", i}});
  }
  obs::set_log_file("");
  obs::set_log_stderr(true);

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(json_valid(line)) << line;
    EXPECT_NE(line.find("\"count\":"), std::string::npos);
  }
  // Occurrences 1, 10, 20, ..., 100.
  EXPECT_EQ(lines, 11u);
  std::remove(path.c_str());
}

TEST(ObsLog, StringFieldsAreJsonEscaped) {
  const std::string path = ::testing::TempDir() + "eva_test_escape.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_file(path);
  obs::log_info("test.escape", {{"msg", "quote\" backslash\\ tab\t"}});
  obs::set_log_file("");
  obs::set_log_stderr(true);

  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty());
  EXPECT_TRUE(json_valid(content.substr(0, content.find('\n')))) << content;
  std::remove(path.c_str());
}

// --- tracing ----------------------------------------------------------------

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  obs::set_trace_enabled(false);
  obs::clear_trace();
  { obs::Span span("test.disabled_span"); }
  const std::string json = obs::trace_to_json();
  EXPECT_EQ(json.find("test.disabled_span"), std::string::npos);
}

TEST(ObsTrace, SpansFromPoolWorkersProduceWellFormedChromeTrace) {
  obs::clear_trace();
  obs::set_trace_enabled(true);
  {
    obs::Span outer("test.outer");
    set_num_threads(4);
    parallel_for(0, std::size_t{64}, [&](std::size_t) {
      obs::Span inner("test.inner");
    });
    set_num_threads(0);
  }
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(json_valid(json)) << json.substr(0, 512);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("test.outer"), std::string::npos);
  EXPECT_NE(json.find("test.inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  obs::clear_trace();
}

TEST(ObsTrace, WriteTraceProducesValidFile) {
  obs::clear_trace();
  obs::set_trace_enabled(true);
  { obs::Span span("test.file_span"); }
  obs::set_trace_enabled(false);

  const std::string path = ::testing::TempDir() + "eva_test_trace.json";
  ASSERT_TRUE(obs::write_trace(path));
  const std::string content = read_file(path);
  EXPECT_TRUE(json_valid(content)) << content.substr(0, 512);
  EXPECT_NE(content.find("test.file_span"), std::string::npos);
  std::remove(path.c_str());
  obs::clear_trace();
}

}  // namespace
