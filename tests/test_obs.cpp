// Tests for the observability layer (src/obs): metrics registry
// correctness under the thread pool, logger sinks and env control, trace
// JSON well-formedness. Run these under EVA_SANITIZE=thread to certify
// the concurrent paths.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "json_check.hpp"
#include "obs/obs.hpp"
#include "util/parallel.hpp"

namespace {

using namespace eva;

// JSON validation lives in tests/json_check.hpp (shared with
// test_serve.cpp, which validates the {"cmd":"stats"} snapshot with the
// same parser).
using testutil::json_valid;

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// --- JSON validator self-test ----------------------------------------------

TEST(ObsJson, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_valid(R"({"a":1,"b":[1,2.5,-3e4],"c":{"d":"x\"y"}})"));
  EXPECT_TRUE(json_valid(R"([true,false,null])"));
  EXPECT_FALSE(json_valid(R"({"a":1)"));
  EXPECT_FALSE(json_valid(R"({"a":})"));
  EXPECT_FALSE(json_valid(R"({"a":1}extra)"));
  EXPECT_FALSE(json_valid(R"({"unterminated)"));
}

// --- metrics ----------------------------------------------------------------

TEST(ObsMetrics, CounterConcurrentIncrementsAreExact) {
  obs::Counter& c = obs::counter("test.concurrent_counter");
  c.reset();
  const std::size_t n = 10000;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t) { c.add(); });
  set_num_threads(0);
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(n));
}

TEST(ObsMetrics, CounterAddWithWeightAndReset) {
  obs::Counter& c = obs::counter("test.weighted_counter");
  c.reset();
  c.add(5);
  c.add(7);
  EXPECT_EQ(c.value(), 12);
  c.reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(ObsMetrics, RegistryReturnsSameObjectForSameName) {
  obs::Counter& a = obs::counter("test.same_name");
  obs::Counter& b = obs::counter("test.same_name");
  EXPECT_EQ(&a, &b);
  a.reset();
  a.add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(ObsMetrics, GaugeStoresLastValue) {
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(ObsMetrics, HistogramPercentileSnapshot) {
  obs::Histogram& h = obs::histogram("test.hist_percentiles");
  h.reset();
  // 1..1000 fits the reservoir, so percentiles are exact interpolations.
  for (int v = 1; v <= 1000; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  EXPECT_NEAR(s.mean, 500.5, 1e-9);
  EXPECT_NEAR(s.p50, 500.5, 1.0);
  EXPECT_NEAR(s.p90, 900.0, 1.5);
  EXPECT_NEAR(s.p99, 990.0, 1.5);
}

TEST(ObsMetrics, EmptyHistogramSnapshotIsZero) {
  obs::Histogram& h = obs::histogram("test.hist_empty");
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(ObsMetrics, HistogramBeyondReservoirKeepsExactAggregates) {
  obs::Histogram& h = obs::histogram("test.hist_overflow");
  h.reset();
  const int n = 10000;  // > reservoir capacity (4096)
  for (int v = 0; v < n; ++v) h.record(v);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, n - 1.0);
  EXPECT_NEAR(s.mean, (n - 1.0) / 2.0, 1e-6);
  // Percentiles are sampled, but must stay inside the recorded range
  // and keep their ordering.
  EXPECT_GE(s.p50, s.min);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(ObsMetrics, ConcurrentHistogramAndCounterFromPool) {
  obs::Counter& c = obs::counter("test.pool_counter");
  obs::Histogram& h = obs::histogram("test.pool_hist");
  c.reset();
  h.reset();
  const std::size_t n = 2000;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t i) {
    c.add(2);
    h.record(static_cast<double>(i));
  });
  set_num_threads(0);
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(2 * n));
  EXPECT_EQ(h.snapshot().count, static_cast<std::uint64_t>(n));
}

TEST(ObsSliding, WindowSeesRecentSamplesTotalSeesAll) {
  obs::SlidingHistogram h;
  // Timestamps are injected (record_at/window_snapshot_at), so rotation
  // is tested without sleeping through real wall-clock seconds.
  h.record_at(1.0, 0);
  h.record_at(2.0, obs::SlidingHistogram::kBucketUs);  // second bucket
  const auto in_window =
      h.window_snapshot_at(2 * obs::SlidingHistogram::kBucketUs);
  EXPECT_EQ(in_window.count, 2u);
  EXPECT_DOUBLE_EQ(in_window.min, 1.0);
  EXPECT_DOUBLE_EQ(in_window.max, 2.0);

  // Advance past the window: the first sample's bucket has rotated out.
  const auto later = h.window_snapshot_at(
      obs::SlidingHistogram::kWindowUs + obs::SlidingHistogram::kBucketUs / 2);
  EXPECT_EQ(later.count, 1u);
  EXPECT_DOUBLE_EQ(later.min, 2.0);

  // Far in the future the window is empty, but the since-start
  // histogram still remembers everything.
  const auto empty =
      h.window_snapshot_at(10 * obs::SlidingHistogram::kWindowUs);
  EXPECT_EQ(empty.count, 0u);
  EXPECT_EQ(h.total_snapshot().count, 2u);
}

TEST(ObsSliding, EmptyWindowPercentilesAreZero) {
  obs::SlidingHistogram h;
  const auto snap = h.window_snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.p50, 0.0);
  EXPECT_DOUBLE_EQ(snap.p99, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(ObsSliding, BucketReuseResetsStaleEpoch) {
  obs::SlidingHistogram h;
  h.record_at(5.0, 0);
  // Same bucket index one full window later: the stale epoch must be
  // discarded, not merged.
  h.record_at(7.0, obs::SlidingHistogram::kWindowUs);
  const auto snap = h.window_snapshot_at(obs::SlidingHistogram::kWindowUs);
  EXPECT_EQ(snap.count, 1u);
  EXPECT_DOUBLE_EQ(snap.min, 7.0);
  EXPECT_EQ(h.total_snapshot().count, 2u);
}

TEST(ObsSliding, PercentilesOverWindowSamples) {
  obs::SlidingHistogram h;
  for (int i = 1; i <= 100; ++i) h.record_at(static_cast<double>(i), 0);
  const auto snap = h.window_snapshot_at(0);
  EXPECT_EQ(snap.count, 100u);
  EXPECT_NEAR(snap.p50, 50.0, 2.0);
  EXPECT_NEAR(snap.p90, 90.0, 2.0);
  EXPECT_NEAR(snap.p99, 99.0, 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST(ObsSliding, ConcurrentRecordsFromPoolWorkersAreExact) {
  obs::SlidingHistogram& h = obs::sliding_histogram("test.sliding_pool");
  h.reset();
  const std::size_t n = 2000;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t i) {
    h.record(static_cast<double>(i % 17));
  });
  set_num_threads(0);
  // Aggregates are exact even past the per-bucket sample cap.
  EXPECT_EQ(h.total_snapshot().count, static_cast<std::uint64_t>(n));
  const auto win = h.window_snapshot();
  EXPECT_EQ(win.count, static_cast<std::uint64_t>(n));
  EXPECT_DOUBLE_EQ(win.max, 16.0);
  // Same name returns the same registered object.
  EXPECT_EQ(&h, &obs::sliding_histogram("test.sliding_pool"));
}

TEST(ObsSliding, AppearsInMetricsJson) {
  obs::sliding_histogram("test.sliding_json").record(3.0);
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"sliding\""), std::string::npos);
  EXPECT_NE(json.find("\"test.sliding_json\""), std::string::npos);
  EXPECT_NE(json.find("\"window\""), std::string::npos);
  EXPECT_NE(json.find("\"total\""), std::string::npos);
}

TEST(ObsMetrics, CountersWithPrefixFiltersByName) {
  obs::counter("test.prefix.alpha").add(3);
  obs::counter("test.prefix.beta").add(5);
  obs::counter("test.other").add(1);
  const auto matched = obs::counters_with_prefix("test.prefix.");
  ASSERT_EQ(matched.size(), 2u);
  std::int64_t sum = 0;
  for (const auto& [name, value] : matched) {
    EXPECT_EQ(name.rfind("test.prefix.", 0), 0u) << name;
    sum += value;
  }
  EXPECT_EQ(sum, 8);
}

TEST(ObsMetrics, MetricsJsonIsWellFormed) {
  obs::counter("test.json_counter").add(42);
  obs::gauge("test.json_gauge").set(3.5);
  obs::histogram("test.json_hist").record(1.0);
  const std::string json = obs::metrics_to_json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json_counter\""), std::string::npos);
}

TEST(ObsMetrics, WriteMetricsProducesValidFile) {
  const std::string path = ::testing::TempDir() + "eva_test_metrics.json";
  obs::counter("test.file_counter").add(1);
  ASSERT_TRUE(obs::write_metrics(path));
  const std::string content = read_file(path);
  EXPECT_TRUE(json_valid(content)) << content;
  std::remove(path.c_str());
}

// --- logging ----------------------------------------------------------------

TEST(ObsLog, ParseLevelNamesCaseInsensitive) {
  using obs::LogLevel;
  EXPECT_EQ(obs::parse_log_level("trace", LogLevel::kOff), LogLevel::kTrace);
  EXPECT_EQ(obs::parse_log_level("DEBUG", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(obs::parse_log_level("Info", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(obs::parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(obs::parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(obs::parse_log_level("off", LogLevel::kInfo), LogLevel::kOff);
  EXPECT_EQ(obs::parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(ObsLog, EnvVarDrivesLevelFiltering) {
  ::setenv("EVA_LOG_LEVEL", "error", 1);
  obs::reload_log_env();
  EXPECT_EQ(obs::log_level(), obs::LogLevel::kError);
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kInfo));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kWarn));
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kError));

  ::setenv("EVA_LOG_LEVEL", "debug", 1);
  obs::reload_log_env();
  EXPECT_TRUE(obs::log_enabled(obs::LogLevel::kDebug));
  EXPECT_FALSE(obs::log_enabled(obs::LogLevel::kTrace));

  ::unsetenv("EVA_LOG_LEVEL");
  obs::set_log_level(obs::LogLevel::kInfo);
}

TEST(ObsLog, FilteredEventsDoNotReachTheJsonlSink) {
  const std::string path = ::testing::TempDir() + "eva_test_filtered.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_level(obs::LogLevel::kWarn);
  obs::set_log_file(path);
  obs::log_info("test.should_be_dropped");
  obs::log_warn("test.should_appear");
  obs::set_log_file("");
  obs::set_log_level(obs::LogLevel::kInfo);
  obs::set_log_stderr(true);

  const std::string content = read_file(path);
  EXPECT_EQ(content.find("should_be_dropped"), std::string::npos);
  EXPECT_NE(content.find("should_appear"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ObsLog, ConcurrentJsonlLinesAreWholeAndValid) {
  const std::string path = ::testing::TempDir() + "eva_test_concurrent.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_file(path);
  obs::Counter& c = obs::counter("test.log_counter");
  c.reset();
  const std::size_t n = 500;
  set_num_threads(4);
  parallel_for(0, n, [&](std::size_t i) {
    c.add();
    obs::log_info("test.worker_event", {{"i", i}, {"tag", "worker"}});
  });
  set_num_threads(0);
  obs::set_log_file("");
  obs::set_log_stderr(true);

  EXPECT_EQ(c.value(), static_cast<std::int64_t>(n));
  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(json_valid(line)) << line;
    EXPECT_NE(line.find("test.worker_event"), std::string::npos);
  }
  EXPECT_EQ(lines, n);
  std::remove(path.c_str());
}

TEST(ObsLog, RateLimitedLoggingEmitsFirstThenEveryNth) {
  const std::string path = ::testing::TempDir() + "eva_test_ratelimit.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_file(path);
  for (int i = 0; i < 100; ++i) {
    obs::log_every_n(obs::LogLevel::kWarn, "test.rate_limited", 10,
                     {{"i", i}});
  }
  obs::set_log_file("");
  obs::set_log_stderr(true);

  std::ifstream in(path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_TRUE(json_valid(line)) << line;
    EXPECT_NE(line.find("\"count\":"), std::string::npos);
  }
  // Occurrences 1, 10, 20, ..., 100.
  EXPECT_EQ(lines, 11u);
  std::remove(path.c_str());
}

TEST(ObsLog, StringFieldsAreJsonEscaped) {
  const std::string path = ::testing::TempDir() + "eva_test_escape.jsonl";
  std::remove(path.c_str());
  obs::set_log_stderr(false);
  obs::set_log_file(path);
  obs::log_info("test.escape", {{"msg", "quote\" backslash\\ tab\t"}});
  obs::set_log_file("");
  obs::set_log_stderr(true);

  const std::string content = read_file(path);
  ASSERT_FALSE(content.empty());
  EXPECT_TRUE(json_valid(content.substr(0, content.find('\n')))) << content;
  std::remove(path.c_str());
}

// --- tracing ----------------------------------------------------------------

TEST(ObsTrace, DisabledSpanRecordsNothing) {
  obs::set_trace_enabled(false);
  obs::clear_trace();
  { obs::Span span("test.disabled_span"); }
  const std::string json = obs::trace_to_json();
  EXPECT_EQ(json.find("test.disabled_span"), std::string::npos);
}

TEST(ObsTrace, SpansFromPoolWorkersProduceWellFormedChromeTrace) {
  obs::clear_trace();
  obs::set_trace_enabled(true);
  {
    obs::Span outer("test.outer");
    set_num_threads(4);
    parallel_for(0, std::size_t{64}, [&](std::size_t) {
      obs::Span inner("test.inner");
    });
    set_num_threads(0);
  }
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(json_valid(json)) << json.substr(0, 512);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("test.outer"), std::string::npos);
  EXPECT_NE(json.find("test.inner"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  obs::clear_trace();
}

TEST(ObsTrace, RequestSpansGetTheirOwnLane) {
  obs::clear_trace();
  obs::set_trace_enabled(true);
  {
    obs::Span a("serve.request", 41u);
    obs::Span b("serve.request.decode", 41u);
  }
  { obs::Span plain("test.thread_span"); }
  obs::set_trace_enabled(false);

  const std::string json = obs::trace_to_json();
  EXPECT_TRUE(json_valid(json)) << json.substr(0, 512);
  // Request-tagged spans land on synthetic pid 2 with tid = request id,
  // so Perfetto renders one lane per request; the id also rides in args.
  EXPECT_NE(json.find("\"pid\":2,\"tid\":41"), std::string::npos) << json;
  EXPECT_NE(json.find("\"request_id\":41"), std::string::npos);
  // Plain spans stay on the real-thread pid, and both process lanes are
  // named via metadata events.
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("process_name"), std::string::npos);
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  obs::clear_trace();
}

TEST(ObsTrace, WriteTraceProducesValidFile) {
  obs::clear_trace();
  obs::set_trace_enabled(true);
  { obs::Span span("test.file_span"); }
  obs::set_trace_enabled(false);

  const std::string path = ::testing::TempDir() + "eva_test_trace.json";
  ASSERT_TRUE(obs::write_trace(path));
  const std::string content = read_file(path);
  EXPECT_TRUE(json_valid(content)) << content.substr(0, 512);
  EXPECT_NE(content.find("test.file_span"), std::string::npos);
  std::remove(path.c_str());
  obs::clear_trace();
}

}  // namespace
