// Determinism + equivalence suite for the batched KV-cache decoding
// engine (DESIGN.md "Batched KV-cache decoding"): infer_step_batched
// must match infer_step, and BatchedDecoder must produce token-identical
// sequences to the reference per-sequence path for any batch width —
// including widths that force mid-stream slot refills — under the same
// seeds. Also pins the SampleResult logprobs contract.
#include <gtest/gtest.h>

#include <vector>

#include "nn/sampler.hpp"
#include "nn/tokenizer.hpp"
#include "nn/transformer.hpp"
#include "util/parallel.hpp"

namespace {

using namespace eva;
using namespace eva::nn;

Tokenizer small_tokenizer() {
  return Tokenizer({4, 4, 2, 2, 2, 2, 2, 2});
}

// --- infer_step_batched vs infer_step ------------------------------------

TEST(BatchedInference, MatchesReferenceStepPath) {
  Rng rng(50);
  ModelConfig cfg = ModelConfig::tiny(24);
  cfg.n_layers = 2;
  TransformerLM model(cfg, rng);

  // Three sequences of different content stepped together; each must see
  // the logits the single-sequence path produces for it alone.
  const std::vector<std::vector<int>> seqs{
      {2, 7, 11, 3, 19}, {5, 5, 5, 5, 5}, {21, 2, 13, 17, 8}};
  std::vector<TransformerLM::Cache> ref_caches;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    ref_caches.push_back(model.make_cache());
  }
  auto bcache = model.make_batched_cache(static_cast<int>(seqs.size()));

  std::vector<float> ref_logits;
  std::vector<float> batched_logits;
  const std::vector<int> slots{0, 1, 2};
  for (std::size_t t = 0; t < seqs[0].size(); ++t) {
    std::vector<int> tokens;
    for (const auto& s : seqs) tokens.push_back(s[t]);
    model.infer_step_batched(bcache, slots, tokens, batched_logits);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      model.infer_step(ref_caches[i], seqs[i][t], ref_logits);
      for (int v = 0; v < cfg.vocab; ++v) {
        EXPECT_FLOAT_EQ(
            ref_logits[static_cast<std::size_t>(v)],
            batched_logits[i * static_cast<std::size_t>(cfg.vocab) +
                           static_cast<std::size_t>(v)])
            << "seq=" << i << " t=" << t << " v=" << v;
      }
    }
  }
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(bcache.len[i], static_cast<int>(seqs[i].size()));
  }
}

TEST(BatchedInference, RowsIndependentOfCohort) {
  // A row's logits must not depend on which other slots share the step —
  // the property behind batch-width invariance. Step the same sequence
  // alone and alongside two others; results must be bitwise identical.
  Rng rng(51);
  TransformerLM model(ModelConfig::tiny(24), rng);
  const std::vector<int> seq{2, 9, 4, 15};

  auto solo_cache = model.make_batched_cache(1);
  auto trio_cache = model.make_batched_cache(3);
  std::vector<float> solo_logits, trio_logits;
  for (std::size_t t = 0; t < seq.size(); ++t) {
    model.infer_step_batched(solo_cache, {0}, {seq[t]}, solo_logits);
    // Companion rows carry different tokens so cross-row leakage would
    // change the observed values.
    model.infer_step_batched(trio_cache, {0, 1, 2},
                             {seq[t], 3, 17}, trio_logits);
    for (std::size_t v = 0; v < solo_logits.size(); ++v) {
      EXPECT_EQ(solo_logits[v], trio_logits[v]) << "t=" << t << " v=" << v;
    }
  }
}

TEST(BatchedInference, SlotRecycleStartsClean) {
  Rng rng(52);
  TransformerLM model(ModelConfig::tiny(24), rng);
  auto cache = model.make_batched_cache(2);
  std::vector<float> a, b;
  // Warm slot 0 with junk, recycle it, and expect position-0 logits to
  // match a fresh cache exactly.
  model.infer_step_batched(cache, {0}, {7}, a);
  model.infer_step_batched(cache, {0}, {3}, a);
  cache.reset_slot(0);
  model.infer_step_batched(cache, {0}, {11}, a);

  auto fresh = model.make_batched_cache(2);
  model.infer_step_batched(fresh, {1}, {11}, b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t v = 0; v < a.size(); ++v) EXPECT_EQ(a[v], b[v]);
}

// --- BatchedDecoder vs reference path ------------------------------------

void expect_same_results(const std::vector<SampleResult>& a,
                         const std::vector<SampleResult>& b,
                         const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ids, b[i].ids) << label << " seq " << i;
    EXPECT_EQ(a[i].hit_eos, b[i].hit_eos) << label << " seq " << i;
    ASSERT_EQ(a[i].logprobs.size(), b[i].logprobs.size())
        << label << " seq " << i;
    for (std::size_t j = 0; j < a[i].logprobs.size(); ++j) {
      EXPECT_FLOAT_EQ(a[i].logprobs[j], b[i].logprobs[j])
          << label << " seq " << i << " action " << j;
    }
  }
}

TEST(BatchedDecoder, TokenIdenticalToReferenceAcrossWidths) {
  Rng rng(53);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::bench_scale(tok.vocab_size()), rng);
  SampleOptions opts;
  opts.temperature = 0.9f;
  opts.top_k = 8;
  opts.max_len = 64;

  constexpr int kN = 23;
  constexpr std::uint64_t kSeed = 4242;
  Rng ref_rng(kSeed);
  const auto ref = sample_batch_reference(model, tok, ref_rng, kN, opts);

  // Width 17 with 23 requests forces mid-stream slot refills; width 1 is
  // the engine degenerate case.
  for (const int width : {1, 4, 17}) {
    BatchedDecoder decoder(model, tok, width, opts);
    Rng brng(kSeed);
    const auto got = decoder.decode(brng, kN);
    expect_same_results(ref, got, "width=" + std::to_string(width));
  }
}

TEST(BatchedDecoder, EquivalenceHoldsWithPoolWorkers) {
  // Same contract with the thread pool actually running workers (the
  // gemm row-partition must not change row values). Run this test under
  // EVA_SANITIZE=thread to validate the engine data-race-free.
  set_num_threads(4);
  Rng rng(54);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::bench_scale(tok.vocab_size()), rng);
  SampleOptions opts;
  opts.temperature = 1.0f;
  opts.top_k = 0;
  opts.max_len = 48;

  Rng r1(99), r2(99);
  const auto ref = sample_batch_reference(model, tok, r1, 9, opts);
  BatchedDecoder decoder(model, tok, 4, opts);
  const auto got = decoder.decode(r2, 9);
  set_num_threads(0);
  expect_same_results(ref, got, "pooled");
}

TEST(BatchedDecoder, SampleBatchRoutesThroughEngineDeterministically) {
  Rng rng(55);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  SampleOptions a_opts, b_opts;
  a_opts.max_len = b_opts.max_len = 32;
  a_opts.batch_width = 2;
  b_opts.batch_width = 16;  // width must not change results
  Rng r1(7), r2(7);
  const auto a = sample_batch(model, tok, r1, 11, a_opts);
  const auto b = sample_batch(model, tok, r2, 11, b_opts);
  expect_same_results(a, b, "sample_batch widths");
}

// --- SampleResult contract (regression for the ids/logprobs asymmetry) ---

TEST(SampleResult, LogprobCountMatchesAcceptedActions) {
  Rng rng(56);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  SampleOptions opts;
  opts.max_len = 20;  // small cap: exercises EOS, closure, and cap endings
  Rng srng(57);
  int eos_seen = 0, cap_seen = 0;
  for (int i = 0; i < 40; ++i) {
    const auto res = sample_sequence(model, tok, srng, opts);
    EXPECT_EQ(res.logprobs.size(),
              res.ids.size() - 1 + (res.hit_eos ? 1u : 0u))
        << "i=" << i;
    // PPO's action sequence is ids + EOS-if-hit; exactly one logprob per
    // action is the consumer-facing guarantee.
    const std::size_t n_actions = res.ids.size() - 1 + (res.hit_eos ? 1 : 0);
    EXPECT_EQ(res.logprobs.size(), n_actions);
    (res.hit_eos ? eos_seen : cap_seen)++;
  }
  EXPECT_GT(eos_seen, 0) << "test never exercised the EOS ending";
}

TEST(SampleResult, InvariantHoldsWithoutLegalityMask) {
  // Without the mask the model can emit pad mid-sequence (the malformed
  // ending) — the invariant must hold on that path too.
  Rng rng(58);
  const Tokenizer tok = small_tokenizer();
  TransformerLM model(ModelConfig::tiny(tok.vocab_size()), rng);
  SampleOptions opts;
  opts.legality_mask = false;
  opts.max_len = 24;
  opts.temperature = 1.5f;  // widen the distribution to reach specials
  Rng srng(59);
  for (int i = 0; i < 60; ++i) {
    const auto res = sample_sequence(model, tok, srng, opts);
    EXPECT_EQ(res.logprobs.size(),
              res.ids.size() - 1 + (res.hit_eos ? 1u : 0u))
        << "i=" << i;
  }
}

}  // namespace
