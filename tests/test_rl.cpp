// Tests for the RL fine-tuning stack: Table I rewards, dataset labeling,
// the reward model, preference-pair construction, DPO and PPO mechanics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/pingraph.hpp"
#include "circuit/validity.hpp"
#include "data/dataset.hpp"
#include "nn/lm_trainer.hpp"
#include "rl/dpo.hpp"
#include "rl/ppo.hpp"
#include "rl/reward_model.hpp"

namespace {

using namespace eva;
using namespace eva::rl;
using circuit::CircuitType;

struct Fixture {
  data::Dataset ds;
  nn::Tokenizer tok;
  nn::TransformerLM model;

  static Fixture make(std::uint64_t seed) {
    data::DatasetConfig cfg;
    cfg.per_type = 5;
    cfg.seed = seed;
    cfg.require_simulatable = false;
    auto ds = data::Dataset::build(cfg);
    auto tok = nn::Tokenizer::from_dataset(ds);
    Rng rng(seed + 1);
    nn::TransformerLM model(nn::ModelConfig::tiny(tok.vocab_size()), rng);
    return Fixture{std::move(ds), std::move(tok), std::move(model)};
  }
};

TEST(RankReward, TableIValues) {
  EXPECT_DOUBLE_EQ(rank_reward(RankClass::HighRelevant), 1.0);
  EXPECT_DOUBLE_EQ(rank_reward(RankClass::LowRelevant), 0.5);
  EXPECT_DOUBLE_EQ(rank_reward(RankClass::IrrelevantValid), -0.5);
  EXPECT_DOUBLE_EQ(rank_reward(RankClass::Invalid), -1.0);
}

TEST(Labeling, ProducesAllRankClasses) {
  auto fx = Fixture::make(400);
  LabelingConfig cfg;
  cfg.target = CircuitType::OpAmp;
  const auto res = label_dataset(fx.ds, fx.tok, cfg);
  std::set<RankClass> seen;
  for (const auto& e : res.examples) seen.insert(e.rank);
  EXPECT_TRUE(seen.count(RankClass::HighRelevant));
  EXPECT_TRUE(seen.count(RankClass::LowRelevant));
  EXPECT_TRUE(seen.count(RankClass::IrrelevantValid));
  EXPECT_TRUE(seen.count(RankClass::Invalid));
  EXPECT_EQ(res.labeled_count, static_cast<int>(res.examples.size()));
  EXPECT_GT(res.labeled_count, 0);
}

TEST(Labeling, RelevantCountMatchesTargetType) {
  auto fx = Fixture::make(401);
  LabelingConfig cfg;
  cfg.target = CircuitType::PowerConverter;
  const auto res = label_dataset(fx.ds, fx.tok, cfg);
  int relevant = 0;
  for (const auto& e : res.examples) {
    relevant += (e.rank == RankClass::HighRelevant ||
                 e.rank == RankClass::LowRelevant);
  }
  EXPECT_EQ(relevant,
            static_cast<int>(fx.ds.of_type(CircuitType::PowerConverter).size()));
}

TEST(Labeling, InvalidExamplesAreActuallyInvalid) {
  auto fx = Fixture::make(402);
  LabelingConfig cfg;
  cfg.target = CircuitType::OpAmp;
  const auto res = label_dataset(fx.ds, fx.tok, cfg);
  for (const auto& e : res.examples) {
    if (e.rank != RankClass::Invalid) continue;
    bool valid = false;
    try {
      const auto tour = fx.tok.decode_ids(e.ids);
      const auto dec = circuit::decode_tour(tour);
      valid = dec.ok && circuit::structurally_valid(dec.netlist);
    } catch (const Error&) {
      valid = false;
    }
    EXPECT_FALSE(valid);
  }
}

TEST(RewardModelTest, TrainingReducesLoss) {
  auto fx = Fixture::make(403);
  LabelingConfig lcfg;
  lcfg.target = CircuitType::OpAmp;
  const auto labels = label_dataset(fx.ds, fx.tok, lcfg);

  Rng rng(5);
  RewardModel rm(fx.model, fx.tok, rng);
  RewardModelConfig cfg;
  cfg.steps = 30;
  const auto losses = rm.train(labels.examples, cfg);
  ASSERT_EQ(losses.size(), 30u);
  double head = 0, tail = 0;
  for (int i = 0; i < 5; ++i) {
    head += losses[static_cast<std::size_t>(i)];
    tail += losses[losses.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_LT(tail, head);
}

TEST(RewardModelTest, RewardAppliesValidityRule) {
  auto fx = Fixture::make(404);
  Rng rng(6);
  RewardModel rm(fx.model, fx.tok, rng);
  // Garbage sequence: reward must be the Invalid rank (-1.0).
  EXPECT_DOUBLE_EQ(rm.reward({fx.tok.start_token()}), -1.0);
}

TEST(RewardModelTest, ScoreWithinRange) {
  auto fx = Fixture::make(405);
  Rng rng(7);
  RewardModel rm(fx.model, fx.tok, rng);
  Rng trng(8);
  const auto tour = circuit::encode_tour(fx.ds.entries()[0].netlist, trng);
  auto ids = fx.tok.encode_tour(tour);
  ids.pop_back();
  const double s = rm.score(ids);
  EXPECT_GE(s, -0.5 - 1e-6);
  EXPECT_LE(s, 1.0 + 1e-6);
  const auto probs = rm.classify(ids);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0f, 1e-4f);
}

TEST(PreferencePairs, AllSixCombosWhenClassesPresent) {
  auto fx = Fixture::make(406);
  LabelingConfig lcfg;
  lcfg.target = CircuitType::OpAmp;
  const auto labels = label_dataset(fx.ds, fx.tok, lcfg);
  Rng rng(9);
  const auto pairs = build_preference_pairs(labels.examples, 2, rng);
  // 4 classes present -> 6 combos x 2 pairs.
  EXPECT_EQ(pairs.size(), 12u);
  for (const auto& p : pairs) {
    EXPECT_FALSE(p.win.empty());
    EXPECT_FALSE(p.lose.empty());
  }
}

TEST(Dpo, TrainingReducesLossAndTracksStats) {
  auto fx = Fixture::make(407);
  LabelingConfig lcfg;
  lcfg.target = CircuitType::OpAmp;
  const auto labels = label_dataset(fx.ds, fx.tok, lcfg);
  Rng rng(10);
  const auto pairs = build_preference_pairs(labels.examples, 5, rng);

  DpoConfig cfg;
  cfg.steps = 25;
  cfg.pairs_per_step = 2;
  cfg.lr = 3e-4f;
  DpoTrainer trainer(fx.model, fx.tok, cfg);
  const auto stats = trainer.train(pairs);
  ASSERT_EQ(stats.loss.size(), 25u);
  ASSERT_EQ(stats.reward_acc.size(), 25u);
  double head = 0, tail = 0;
  for (int i = 0; i < 5; ++i) {
    head += stats.loss[static_cast<std::size_t>(i)];
    tail += stats.loss[stats.loss.size() - 1 - static_cast<std::size_t>(i)];
  }
  EXPECT_LT(tail, head) << "DPO loss did not decrease";
  for (double a : stats.reward_acc) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(Dpo, RewardAccuracyImprovesOnTrainPairs) {
  auto fx = Fixture::make(408);
  LabelingConfig lcfg;
  lcfg.target = CircuitType::OpAmp;
  const auto labels = label_dataset(fx.ds, fx.tok, lcfg);
  Rng rng(11);
  const auto pairs = build_preference_pairs(labels.examples, 4, rng);

  DpoConfig cfg;
  cfg.steps = 30;
  cfg.pairs_per_step = 3;
  cfg.lr = 5e-4f;
  DpoTrainer trainer(fx.model, fx.tok, cfg);
  const double acc_before = trainer.reward_accuracy(pairs);
  // Untrained policy == reference: margin is exactly 0, accuracy 0.
  EXPECT_DOUBLE_EQ(acc_before, 0.0);
  trainer.train(pairs);
  const double acc_after = trainer.reward_accuracy(pairs);
  EXPECT_GT(acc_after, 0.5);
}

TEST(Ppo, RunsAndRecordsStats) {
  auto fx = Fixture::make(409);
  LabelingConfig lcfg;
  lcfg.target = CircuitType::OpAmp;
  const auto labels = label_dataset(fx.ds, fx.tok, lcfg);

  Rng rng(12);
  RewardModel rm(fx.model, fx.tok, rng);
  RewardModelConfig rmc;
  rmc.steps = 10;
  rm.train(labels.examples, rmc);

  PpoConfig cfg;
  cfg.epochs = 2;
  cfg.rollouts = 4;
  cfg.ppo_epochs = 1;
  cfg.minibatch = 2;
  cfg.max_len = 48;
  PpoTrainer trainer(fx.model, fx.tok, rm, cfg, rng);
  const auto stats = trainer.train();
  EXPECT_EQ(stats.mean_reward.size(), 2u);
  EXPECT_FALSE(stats.policy_loss.empty());
  EXPECT_EQ(stats.policy_loss.size(), stats.value_loss.size());
  for (double r : stats.mean_reward) {
    EXPECT_GE(r, -1.0 - 1e-9);
    EXPECT_LE(r, 1.0 + 1e-9);
    EXPECT_TRUE(std::isfinite(r));
  }
  for (double l : stats.total_loss) EXPECT_TRUE(std::isfinite(l));
}

TEST(Ppo, UntrainedModelRewardIsNearInvalid) {
  // A random-weight model emits garbage: mean reward should sit at the
  // bottom of the Table I scale (the finetune-only pathology of Fig. 3).
  auto fx = Fixture::make(410);
  LabelingConfig lcfg;
  lcfg.target = CircuitType::OpAmp;
  const auto labels = label_dataset(fx.ds, fx.tok, lcfg);
  Rng rng(13);
  RewardModel rm(fx.model, fx.tok, rng);
  RewardModelConfig rmc;
  rmc.steps = 5;
  rm.train(labels.examples, rmc);

  PpoConfig cfg;
  cfg.max_len = 48;
  PpoTrainer trainer(fx.model, fx.tok, rm, cfg, rng);
  const double r = trainer.evaluate_mean_reward(6);
  EXPECT_LT(r, -0.5);
}

}  // namespace
