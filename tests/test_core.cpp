// Integration tests for the Eva engine facade: the full pipeline at
// unit-test scale (dataset -> pretrain -> finetune -> generate -> metrics).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/eva.hpp"

namespace {

using namespace eva;
using circuit::CircuitType;

core::EvaConfig tiny_config(std::uint64_t seed) {
  core::EvaConfig cfg;
  cfg.seed = seed;
  cfg.dataset.per_type = 5;
  cfg.dataset.seed = seed + 1;
  cfg.dataset.require_simulatable = false;
  cfg.tours_per_topology = 2;
  cfg.model = nn::ModelConfig::tiny(0);
  cfg.pretrain.steps = 60;
  cfg.pretrain.batch = 4;
  return cfg;
}

TEST(Eva, PrepareBuildsEverything) {
  core::Eva engine(tiny_config(700));
  EXPECT_FALSE(engine.prepared());
  engine.prepare();
  EXPECT_TRUE(engine.prepared());
  EXPECT_EQ(engine.dataset().entries().size(), 5u * 11u);
  EXPECT_GT(engine.tokenizer().vocab_size(), 20);
  EXPECT_EQ(engine.model().config().vocab, engine.tokenizer().vocab_size());
  EXPECT_FALSE(engine.corpus().train.empty());
}

TEST(Eva, MethodsRequirePrepare) {
  core::Eva engine(tiny_config(701));
  EXPECT_THROW(engine.pretrain(), Error);
  EXPECT_THROW((void)engine.generate(1), Error);
}

TEST(Eva, PretrainImprovesLossAndValidity) {
  core::Eva engine(tiny_config(702));
  engine.prepare();
  const auto result = engine.pretrain();
  EXPECT_FALSE(result.losses.empty());
  EXPECT_LT(result.losses.back(), result.losses.front());
  EXPECT_TRUE(std::isfinite(result.final_val_loss));
}

TEST(Eva, GenerateReturnsAttempts) {
  core::Eva engine(tiny_config(703));
  engine.prepare();
  const auto attempts = engine.generate(5);
  EXPECT_EQ(attempts.size(), 5u);
}

TEST(Eva, EvaluateGenerationProducesMetrics) {
  core::Eva engine(tiny_config(704));
  engine.prepare();
  engine.pretrain();
  const auto ev = engine.evaluate_generation(10);
  EXPECT_EQ(ev.total, 10);
  EXPECT_GE(ev.valid, 0);
  EXPECT_LE(ev.validity_pct, 100.0);
}

TEST(Eva, LabelForReportsCounts) {
  core::Eva engine(tiny_config(705));
  engine.prepare();
  const auto labels = engine.label_for(CircuitType::OpAmp);
  EXPECT_GT(labels.labeled_count, 0);
}

TEST(Eva, SaveLoadRoundTrip) {
  core::Eva engine(tiny_config(706));
  engine.prepare();
  const std::string path = "/tmp/eva_core_ckpt.bin";
  engine.save_model(path);
  // Perturb then restore.
  auto params = engine.model().parameters();
  params[0].data()[0] += 42.0f;
  engine.load_model(path);
  EXPECT_NE(engine.model().parameters()[0].data()[0], 42.0f);
  std::remove(path.c_str());
}

TEST(Eva, DpoFinetuneRuns) {
  core::Eva engine(tiny_config(707));
  engine.prepare();
  engine.pretrain();
  rl::DpoConfig dpo;
  dpo.steps = 10;
  dpo.pairs_per_step = 2;
  const auto stats = engine.finetune_dpo(CircuitType::OpAmp, dpo, 4);
  EXPECT_EQ(stats.loss.size(), 10u);
  for (double l : stats.loss) EXPECT_TRUE(std::isfinite(l));
}

TEST(Eva, PpoFinetuneRuns) {
  core::Eva engine(tiny_config(708));
  engine.prepare();
  engine.pretrain();
  rl::PpoConfig ppo;
  ppo.epochs = 1;
  ppo.rollouts = 4;
  ppo.ppo_epochs = 1;
  ppo.minibatch = 2;
  ppo.max_len = 64;
  rl::RewardModelConfig rm;
  rm.steps = 8;
  const auto stats = engine.finetune_ppo(CircuitType::OpAmp, ppo, rm);
  EXPECT_EQ(stats.mean_reward.size(), 1u);
}

TEST(Eva, DiscoverRuns) {
  core::Eva engine(tiny_config(709));
  engine.prepare();
  engine.pretrain();
  opt::GaConfig ga;
  ga.population = 8;
  ga.generations = 3;
  const auto res = engine.discover(CircuitType::OpAmp, 3, ga);
  EXPECT_EQ(res.attempts, 3);
  EXPECT_GE(res.best_fom, 0.0);
}

}  // namespace
